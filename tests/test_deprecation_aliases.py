"""The ``*_kb`` -> ``*_kbit`` deprecation shims, pinned end to end.

The rename (the unit was always kilobits, only the name was ambiguous)
left warning aliases on :class:`~repro.bittorrent.swarm.SwarmConfig`,
:class:`~repro.bittorrent.swarm.SwarmPeer` and
:class:`~repro.bittorrent.pieces.Torrent`.  These tests close the gap the
rename left open: every alias must warn ``DeprecationWarning`` exactly
once per access, forward the new field's value, and passing both
spellings to a constructor must raise rather than silently pick one.
"""

from __future__ import annotations

import warnings

import pytest

from repro.bittorrent.pieces import Bitfield, Torrent
from repro.bittorrent.swarm import SwarmConfig, SwarmPeer


def assert_warns_exactly_once(access, expected_value):
    """Run ``access`` once; exactly one DeprecationWarning, right value."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = access()
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}: "
        f"{[str(w.message) for w in caught]}"
    )
    assert "deprecated" in str(deprecations[0].message)
    assert "kbit" in str(deprecations[0].message)
    assert value == expected_value


class TestSwarmConfigAliases:
    def test_constructor_alias_warns_once_and_forwards(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = SwarmConfig(leechers=5, piece_count=10, rounds=2, piece_size_kb=512.0)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert config.piece_size_kbit == 512.0

    def test_attribute_alias_warns_once_per_access(self):
        config = SwarmConfig(leechers=5, piece_count=10, rounds=2)
        assert_warns_exactly_once(lambda: config.piece_size_kb, config.piece_size_kbit)
        # Each access warns again -- the shim must not memoize itself away.
        assert_warns_exactly_once(lambda: config.piece_size_kb, config.piece_size_kbit)

    def test_both_spellings_raise(self):
        with pytest.raises(TypeError, match="not both"):
            SwarmConfig(
                leechers=5, piece_count=10, rounds=2,
                piece_size_kbit=512.0, piece_size_kb=256.0,
            )

    def test_new_spelling_warns_nothing(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = SwarmConfig(leechers=5, piece_count=10, rounds=2, piece_size_kbit=128.0)
            _ = config.piece_size_kbit
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestSwarmPeerAliases:
    @pytest.fixture
    def peer(self) -> SwarmPeer:
        return SwarmPeer(
            peer_id=1,
            upload_kbps=100.0,
            is_seed=False,
            bitfield=Bitfield.empty(8),
            downloaded_kbit=123.5,
            uploaded_kbit=67.25,
            partial_kbit={2: 31.5},
        )

    @pytest.mark.parametrize(
        "alias,target",
        [
            ("downloaded_kb", "downloaded_kbit"),
            ("uploaded_kb", "uploaded_kbit"),
            ("partial_kb", "partial_kbit"),
        ],
    )
    def test_alias_warns_once_and_forwards(self, peer, alias, target):
        assert_warns_exactly_once(
            lambda: getattr(peer, alias), getattr(peer, target)
        )
        assert_warns_exactly_once(
            lambda: getattr(peer, alias), getattr(peer, target)
        )

    def test_new_spellings_warn_nothing(self, peer):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert peer.downloaded_kbit == 123.5
            assert peer.uploaded_kbit == 67.25
            assert peer.partial_kbit == {2: 31.5}
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestTorrentAliases:
    def test_constructor_alias_warns_once_and_forwards(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            torrent = Torrent(10, piece_size_kb=512.0)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert torrent.piece_size_kbit == 512.0

    def test_attribute_aliases_warn_once_per_access(self):
        torrent = Torrent(10, 256.0)
        assert_warns_exactly_once(lambda: torrent.piece_size_kb, 256.0)
        assert_warns_exactly_once(lambda: torrent.total_size_kb, 2560.0)

    def test_both_spellings_raise(self):
        with pytest.raises(TypeError, match="not both"):
            Torrent(10, piece_size_kbit=512.0, piece_size_kb=256.0)
