"""Self-tests for the determinism linter (``repro-p2p-lint``).

Fixture snippets live in ``tests/lint_fixtures/``: for every rule there
is a file the rule must fire on, a clean counterpart, and a
pragma-suppressed variant.  On top of the per-rule coverage this module
pins the pragma grammar (RPD000), the cross-engine parity check, the
baseline mechanics, the JSON report schema, the CLI exit codes -- and
that the real ``src/`` tree lints clean against the committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import baseline as baseline_mod
from repro.devtools.lint import REPORT_VERSION, json_report, main, run_lint
from repro.devtools.rules import RULES, lint_source

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
SIM_FIXTURES = FIXTURES / "sim_paths" / "repro" / "core"

INJECTED_RPD001 = (
    "import numpy as np\n"
    "\n"
    "def diverges_silently():\n"
    "    return np.random.default_rng().random()\n"
)


def lint_fixture(path: Path, *, parity: bool = False):
    """Lint one fixture file/dir with no baseline (the unit under test)."""
    return run_lint([path], baseline_path=None, parity=parity)


def active_codes(run) -> set:
    return {f.code for f in run.active}


# -- per-rule fixtures: fire / clean / pragma ----------------------------------


@pytest.mark.parametrize(
    "fixture, code",
    [
        (FIXTURES / "rpd001_bad.py", "RPD001"),
        (FIXTURES / "rpd002_bad.py", "RPD002"),
        (FIXTURES / "rpd003_bad.py", "RPD003"),
        (SIM_FIXTURES / "rpd004_bad.py", "RPD004"),
        (FIXTURES / "rpd005_bad.py", "RPD005"),
    ],
)
def test_rule_fires_on_bad_fixture(fixture: Path, code: str) -> None:
    run = lint_fixture(fixture)
    assert code in active_codes(run), f"{code} must fire on {fixture.name}"
    assert run.exit_code == 1


@pytest.mark.parametrize(
    "fixture, code",
    [
        (FIXTURES / "rpd001_good.py", "RPD001"),
        (FIXTURES / "rpd002_good.py", "RPD002"),
        (FIXTURES / "rpd003_good.py", "RPD003"),
        (SIM_FIXTURES / "rpd004_good.py", "RPD004"),
        (FIXTURES / "rpd005_good.py", "RPD005"),
    ],
)
def test_clean_counterpart_passes(fixture: Path, code: str) -> None:
    run = lint_fixture(fixture)
    assert not run.findings, (
        f"{fixture.name} must be fully clean, got "
        f"{[f.location() + ' ' + f.code for f in run.findings]}"
    )
    assert run.exit_code == 0


@pytest.mark.parametrize(
    "fixture, code",
    [
        (FIXTURES / "rpd001_pragma.py", "RPD001"),
        (FIXTURES / "rpd002_pragma.py", "RPD002"),
        (FIXTURES / "rpd003_pragma.py", "RPD003"),
        (SIM_FIXTURES / "rpd004_pragma.py", "RPD004"),
        (FIXTURES / "rpd005_pragma.py", "RPD005"),
    ],
)
def test_pragma_suppresses_with_justification(fixture: Path, code: str) -> None:
    run = lint_fixture(fixture)
    assert not run.active, "a justified pragma must clear the exit code"
    suppressed = [f for f in run.findings if f.suppressed and f.code == code]
    assert suppressed, f"the {code} finding must still be *recorded* as suppressed"
    assert all(f.justification for f in suppressed)
    assert run.exit_code == 0


def test_rpd001_fires_per_construction_site() -> None:
    run = lint_fixture(FIXTURES / "rpd001_bad.py")
    rpd001 = [f for f in run.active if f.code == "RPD001"]
    # from-import of random.shuffle + seedless default_rng + np.random.uniform
    # + random.random: four distinct sites.
    assert len(rpd001) == 4


def test_rpd004_is_path_scoped() -> None:
    outside = lint_fixture(FIXTURES / "rpd004_outside.py")
    assert "RPD004" not in {f.code for f in outside.findings}
    # Identical call inside a repro/core/ path fragment is rejected.
    inside = lint_source("repro/core/clock_abuse.py", "import time\nt = time.time()\n")
    assert {f.code for f in inside.findings} == {"RPD004"}


# -- RPD000: the pragma grammar is itself enforced -----------------------------


def test_malformed_pragmas_raise_rpd000() -> None:
    run = lint_fixture(FIXTURES / "rpd000_bad.py")
    rpd000 = [f for f in run.active if f.code == "RPD000"]
    assert len(rpd000) == 3  # empty code list, unknown code, missing justification
    # A malformed pragma must NOT suppress the finding it sits next to.
    assert sum(1 for f in run.active if f.code == "RPD001") == 3
    messages = " ".join(f.message for f in rpd000)
    assert "justification" in messages and "RPD999" in messages


# -- cross-engine parity -------------------------------------------------------


def test_parity_passes_when_trees_match() -> None:
    run = lint_fixture(FIXTURES / "parity" / "ok", parity=True)
    assert not run.active


def test_parity_fires_when_fast_tree_drops_a_stream() -> None:
    run = lint_fixture(FIXTURES / "parity" / "broken", parity=True)
    parity = [f for f in run.active if f.code == "RPD002"]
    assert parity, "dropping a paired stream from the fast tree must fail"
    messages = " ".join(f.message for f in parity)
    assert "initiatives" in messages
    assert "parity" in messages
    # The bittorrent pair's resilience streams are covered too: the fast
    # fixture drops both, and each missing stream must be named.
    assert "pex-gossip" in messages
    assert "tracker-select" in messages


def test_parity_skipped_on_partial_scans() -> None:
    # Only the reference half in scope: parity cannot be judged, no finding.
    reference_only = FIXTURES / "parity" / "broken" / "repro" / "core" / "dynamics.py"
    run = lint_fixture(reference_only, parity=True)
    assert not run.findings


# -- baseline mechanics --------------------------------------------------------


def test_baseline_absorbs_and_reports_stale_entries(tmp_path: Path) -> None:
    bad = tmp_path / "legacy.py"
    bad.write_text(INJECTED_RPD001, encoding="utf-8")
    baseline_file = tmp_path / "lint_baseline.json"

    first = run_lint([bad], baseline_path=None, parity=False)
    assert first.exit_code == 1
    baseline_mod.write_baseline(baseline_file, first.active)

    second = run_lint([bad], baseline_path=baseline_file, parity=False)
    assert second.exit_code == 0
    assert [f.code for f in second.findings if f.baselined] == ["RPD001"]
    assert second.baseline_summary == {"consumed": 1, "unused": 0}

    # Fixing the debt leaves the baseline entry stale -- reported, not fatal.
    bad.write_text("x = 1\n", encoding="utf-8")
    third = run_lint([bad], baseline_path=baseline_file, parity=False)
    assert third.exit_code == 0
    assert third.baseline_summary == {"consumed": 0, "unused": 1}


def test_baseline_does_not_absorb_new_violations(tmp_path: Path) -> None:
    bad = tmp_path / "legacy.py"
    bad.write_text(INJECTED_RPD001, encoding="utf-8")
    baseline_file = tmp_path / "lint_baseline.json"
    baseline_mod.write_baseline(
        baseline_file, run_lint([bad], baseline_path=None, parity=False).active
    )

    bad.write_text(INJECTED_RPD001 + "\nimport random\ny = random.random()\n",
                   encoding="utf-8")
    run = run_lint([bad], baseline_path=baseline_file, parity=False)
    assert run.exit_code == 1
    assert [f.code for f in run.active] == ["RPD001"]  # only the new site


def test_malformed_baseline_is_a_usage_error(tmp_path: Path) -> None:
    broken = tmp_path / "lint_baseline.json"
    broken.write_text('{"version": 99}', encoding="utf-8")
    target = tmp_path / "ok.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert main([str(target), "--baseline", str(broken)]) == 2


# -- JSON report schema --------------------------------------------------------


def test_json_report_schema(capsys: pytest.CaptureFixture) -> None:
    exit_code = main(
        [str(FIXTURES / "rpd001_bad.py"), "--no-baseline", "--format", "json"]
    )
    report = json.loads(capsys.readouterr().out)

    assert report["version"] == REPORT_VERSION
    assert report["rules"] == dict(RULES)
    assert report["files_scanned"] == 1
    assert report["exit_code"] == exit_code == 1
    assert set(report["counts"]) == {"active", "suppressed", "baselined"}
    assert set(report["baseline"]) == {"consumed", "unused"}
    assert isinstance(report["consumed_streams"], list)
    required = {
        "path": str, "line": int, "col": int, "code": str, "message": str,
        "snippet": str, "suppressed": bool, "justification": str,
        "baselined": bool, "fingerprint": str,
    }
    assert report["findings"], "the bad fixture must yield findings"
    for finding in report["findings"]:
        assert set(finding) == set(required)
        for key, type_ in required.items():
            assert isinstance(finding[key], type_), (key, finding[key])
        assert finding["code"] in RULES
    assert report["counts"]["active"] == sum(
        1 for f in report["findings"]
        if not f["suppressed"] and not f["baselined"]
    )


def test_json_report_round_trips(tmp_path: Path) -> None:
    run = run_lint([FIXTURES / "rpd002_bad.py"], baseline_path=None, parity=False)
    report = json_report(run)
    assert json.loads(json.dumps(report)) == report  # fully JSON-serialisable


# -- CLI behaviour -------------------------------------------------------------


def test_cli_exit_zero_on_clean_file(tmp_path: Path) -> None:
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert main([str(clean), "--no-baseline"]) == 0


def test_cli_fails_on_injected_rpd001(tmp_path: Path) -> None:
    """The gate the CI job re-verifies: a seeded-rng regression cannot pass."""
    injected = tmp_path / "injected.py"
    injected.write_text(INJECTED_RPD001, encoding="utf-8")
    assert main([str(injected), "--no-baseline"]) == 1


def test_cli_usage_error_on_missing_target(tmp_path: Path) -> None:
    assert main([str(tmp_path / "does_not_exist.py"), "--no-baseline"]) == 2


def test_cli_write_baseline_then_green(tmp_path: Path, capsys) -> None:
    bad = tmp_path / "legacy.py"
    bad.write_text(INJECTED_RPD001, encoding="utf-8")
    baseline_file = tmp_path / "lint_baseline.json"
    assert main([str(bad), "--baseline", str(baseline_file), "--write-baseline"]) == 0
    capsys.readouterr()
    payload = json.loads(baseline_file.read_text(encoding="utf-8"))
    assert payload["version"] == baseline_mod.BASELINE_VERSION
    assert len(payload["entries"]) == 1
    assert main([str(bad), "--baseline", str(baseline_file)]) == 0


def test_syntax_error_reported_not_crashed(tmp_path: Path) -> None:
    mangled = tmp_path / "mangled.py"
    mangled.write_text("def broken(:\n", encoding="utf-8")
    run = run_lint([mangled], baseline_path=None, parity=False)
    assert [f.code for f in run.active] == ["RPD000"]
    assert "does not parse" in run.active[0].message


# -- the real tree -------------------------------------------------------------


def test_real_src_tree_lints_clean() -> None:
    """``repro-p2p-lint src`` holds on the tree the tests run against."""
    run = run_lint(
        [REPO_ROOT / "src"],
        baseline_path=REPO_ROOT / "lint_baseline.json",
        parity=True,
    )
    assert not run.active, "\n".join(
        f"{f.location()}: {f.code} {f.message}" for f in run.active
    )


def test_committed_baseline_has_no_strict_tree_entries() -> None:
    """Policy: no baselined debt in sim/, core/fast/ or bittorrent/fast/."""
    payload = json.loads(
        (REPO_ROOT / "lint_baseline.json").read_text(encoding="utf-8")
    )
    strict_fragments = ("repro/sim/", "repro/core/fast/", "repro/bittorrent/fast/")
    offenders = [
        entry["path"]
        for entry in payload["entries"]
        if any(fragment in entry["path"] for fragment in strict_fragments)
    ]
    assert not offenders
