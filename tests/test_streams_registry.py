"""The stream-name registry: exhaustive, collision-free, and enforced.

``repro.sim.streams`` is the single declaration point of the named-stream
determinism contract.  These tests pin the registry's internal coherence
(constants <-> specs <-> names, no collisions, no dynamic-prefix shadowing),
check it against the *actual* consumption of the ``src/`` tree as collected
by the linter (no unregistered consumer, no dead registry entry), and cover
the runtime ``strict_streams`` enforcement in :class:`RandomSource`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import run_lint
from repro.sim import streams
from repro.sim.random_source import RandomSource

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def src_consumption():
    """Stream names consumed per file across the real src tree."""
    run = run_lint([REPO_ROOT / "src"], baseline_path=None, parity=False)
    return run.consumption


# -- internal coherence --------------------------------------------------------


def test_registry_keys_match_spec_names() -> None:
    for name, spec in streams.REGISTRY.items():
        assert spec.name == name


def test_constants_cover_registry_exactly() -> None:
    constants = streams.constant_map()
    assert sorted(constants.values()) == sorted(streams.REGISTRY)
    # Bijective: no two constants may denote the same stream.
    assert len(set(constants.values())) == len(constants)


def test_no_dynamic_prefix_shadows_a_registered_name() -> None:
    for prefix in streams.DYNAMIC_PREFIXES:
        clashes = [name for name in streams.REGISTRY if name.startswith(prefix)]
        assert not clashes, f"prefix {prefix!r} shadows {clashes}"


def test_domains_and_pairing_are_consistent() -> None:
    domains = {spec.domain for spec in streams.REGISTRY.values()}
    assert domains == {"core", "bittorrent"}
    assert streams.paired_names("core") == {streams.INITIATIVES}
    assert streams.paired_names("bittorrent") == {
        streams.BANDWIDTH,
        streams.BEHAVIOR,
        streams.BOOTSTRAP,
        streams.TRACKER,
        streams.SCENARIO,
        streams.ROUNDS,
        streams.FAULT_LOSS,
        streams.FAULT_CRASH,
        streams.FAULT_PARTITION,
        streams.TRACKER_SELECT,
        streams.PEX_GOSSIP,
    }
    for spec in streams.REGISTRY.values():
        assert spec.description, f"{spec.name} needs a description"


def test_is_registered_exact_and_prefix() -> None:
    assert streams.is_registered(streams.BANDWIDTH)
    assert streams.is_registered("graph-42-0.25-7")
    assert streams.is_registered("slots-0.15-3")
    assert not streams.is_registered("mystery-stream")
    with pytest.raises(KeyError):
        streams.spec("mystery-stream")


# -- the registry against the real tree ----------------------------------------


def test_every_consumed_stream_is_registered(src_consumption) -> None:
    unregistered = {
        (path, name)
        for path, names in src_consumption.items()
        for name in names
        if not streams.is_registered(name)
    }
    assert not unregistered


def test_registry_has_no_dead_entries(src_consumption) -> None:
    """Every declared stream has at least one consumer in src/."""
    consumed = set()
    for names in src_consumption.values():
        consumed.update(names)
    dead = set(streams.REGISTRY) - consumed
    assert not dead, f"unconsumed registry entries: {sorted(dead)}"


# -- runtime strict mode -------------------------------------------------------


def test_strict_streams_rejects_undeclared_names() -> None:
    source = RandomSource(7, strict_streams=True)
    with pytest.raises(KeyError, match="mystery-stream"):
        source.stream("mystery-stream")
    with pytest.raises(KeyError):
        source.fresh_stream("also-not-declared")


def test_strict_streams_accepts_registered_and_dynamic_names() -> None:
    strict = RandomSource(7, strict_streams=True)
    loose = RandomSource(7)
    assert (
        strict.stream(streams.BANDWIDTH).random()
        == loose.stream(streams.BANDWIDTH).random()
    )
    strict.fresh_stream("graph-1")  # dynamic family accepted
    assert strict.stream(streams.TRACKER).integers(100) == loose.stream(
        streams.TRACKER
    ).integers(100)
