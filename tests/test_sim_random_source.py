"""Tests for repro.sim.random_source."""

from __future__ import annotations

import numpy as np

from repro.sim.random_source import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_depends_on_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_depends_on_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_positive_63_bits(self):
        for seed in (0, 1, 2**40, 17):
            value = derive_seed(seed, "stream")
            assert 0 <= value < 2**63


class TestRandomSource:
    def test_same_seed_same_draws(self):
        a = RandomSource(7).stream("x").random(5)
        b = RandomSource(7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_streams_are_independent(self):
        source = RandomSource(7)
        a = source.stream("x").random(5)
        b = source.stream("y").random(5)
        assert not np.allclose(a, b)

    def test_stream_is_cached(self):
        source = RandomSource(7)
        assert source.stream("x") is source.stream("x")

    def test_fresh_stream_restarts(self):
        source = RandomSource(7)
        first = source.fresh_stream("x").random()
        source.stream("x").random()  # advance the cached stream
        again = source.fresh_stream("x").random()
        assert first == again

    def test_adding_stream_does_not_perturb_existing(self):
        plain = RandomSource(3)
        values_before = plain.stream("graph").random(4)

        other = RandomSource(3)
        other.stream("unrelated").random(10)
        values_after = other.stream("graph").random(4)
        assert np.allclose(values_before, values_after)

    def test_spawn_creates_independent_child(self):
        source = RandomSource(11)
        child_a = source.spawn("rep0")
        child_b = source.spawn("rep1")
        assert child_a.seed != child_b.seed
        assert child_a.seed == RandomSource(11).spawn("rep0").seed

    def test_none_seed_records_value(self):
        source = RandomSource(None)
        assert isinstance(source.seed, int)
        # Reproducible from the recorded seed.
        clone = RandomSource(source.seed)
        assert np.allclose(source.stream("a").random(3), clone.stream("a").random(3))

    def test_shuffled_returns_permutation(self):
        source = RandomSource(5)
        items = list(range(20))
        shuffled = source.shuffled("perm", items)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely for 20 items

    def test_choice_uses_named_stream(self):
        a = RandomSource(9).choice("pick", list(range(100)))
        b = RandomSource(9).choice("pick", list(range(100)))
        assert a == b

    def test_choice_without_replacement(self):
        drawn = RandomSource(9).choice("pick", list(range(10)), size=10, replace=False)
        assert sorted(int(x) for x in drawn) == list(range(10))
        with_replacement = RandomSource(9).choice("pick", list(range(3)), size=50)
        assert len(set(int(x) for x in with_replacement)) <= 3
