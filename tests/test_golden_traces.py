"""Golden-trace regression suite: cross-version determinism, CI-enforced.

The engine-equivalence suites prove ``fast == reference`` *within* one
version of the code; they cannot catch a change that alters both engines
the same way (a reordered random draw, a tweaked float sequence, a new
default).  These tests replay small seeded simulations -- three swarm
scenarios and three matching runs -- and diff their full serialized
results against JSON traces committed under ``tests/golden/``, so any
drift in the deterministic contract breaks CI loudly.

If a change *intentionally* alters the traces (e.g. a new random draw in
the hot path), regenerate and commit them:

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden

then review the JSON diff like any other code change -- it is the exact
externally-visible behaviour shift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.bittorrent.swarm import SwarmConfig, SwarmResult, SwarmSimulator
from repro.bittorrent.telemetry import ObservedSwarm, ObserverConfig
from repro.core.dynamics import simulate_convergence

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

# -- serialization (everything JSON-exact: ints, bools and IEEE doubles) --------


def serialize_swarm_result(result: SwarmResult) -> Dict:
    """Full swarm outcome as a JSON-stable dict (doubles round-trip exactly).

    The ``resilience`` key appears only when the run had a non-trivial
    policy, so every pre-resilience trace stays byte-identical.
    """
    data = {
        "completed": result.completed,
        "rounds_run": result.rounds_run,
        "arrivals": result.arrivals,
        "departures": result.departures,
        "collaboration_volume": [
            [a, b, float(v)] for (a, b), v in sorted(result.collaboration_volume.items())
        ],
        "tft_reciprocal_rounds": [
            [a, b, float(v)] for (a, b), v in sorted(result.tft_reciprocal_rounds.items())
        ],
        "peers": {
            str(pid): {
                "upload_kbps": float(peer.upload_kbps),
                "is_seed": peer.is_seed,
                "neighbors": sorted(peer.neighbors),
                "bitfield": sorted(peer.bitfield.held()),
                "downloaded_kbit": float(peer.downloaded_kbit),
                "uploaded_kbit": float(peer.uploaded_kbit),
                "partial_kbit": {
                    str(sender): float(credit)
                    for sender, credit in sorted(peer.partial_kbit.items())
                },
                "received_last_round": {
                    str(sender): float(volume)
                    for sender, volume in sorted(peer.received_last_round.items())
                },
                "completed_round": peer.completed_round,
                "arrival_round": peer.arrival_round,
                "departed_round": peer.departed_round,
                "behavior": peer.behavior,
                "locality_group": peer.locality_group,
            }
            for pid, peer in sorted(result.peers.items())
        },
    }
    if result.resilience is not None:
        stats = result.resilience
        data["resilience"] = {
            "replica_announces": list(stats.replica_announces),
            "failover_announces": stats.failover_announces,
            "pex_introductions": stats.pex_introductions,
            "pex_bootstraps": stats.pex_bootstraps,
            "evictions": stats.evictions,
            "purges": stats.purges,
        }
    return data


def serialize_observed(observed: ObservedSwarm) -> Dict:
    """A measurement campaign as a JSON-stable dict.

    Poll progress is an exact ratio of two small ints, so the doubles
    round-trip bit-for-bit through JSON like everything else here.
    """
    return {
        "rounds_observed": observed.rounds_observed,
        "scrapes": [
            [s.round, s.seeders, s.leechers, s.snatches] for s in observed.scrapes
        ],
        "poll_rounds": list(observed.poll_rounds),
        "timelines": {
            str(pid): [
                [sample.round, float(sample.progress), sorted(sample.partners)]
                for sample in samples
            ]
            for pid, samples in sorted(observed.timelines.items())
        },
        "reported_downloads": observed.reported_downloads(),
        "confirmed_downloads": {
            str(threshold): observed.confirmed_downloads(threshold)
            for threshold in (0.9, 0.98, 1.0)
        },
    }


def serialize_convergence(result) -> Dict:
    """Matching-layer trace: disorder trajectory + the final configuration."""
    times, values = result.trajectory.as_arrays()
    return {
        "trajectory_times": [float(t) for t in times],
        "trajectory_disorder": [float(v) for v in values],
        "initiatives": result.initiatives,
        "active_initiatives": result.active_initiatives,
        "converged": result.converged,
        "time_to_converge": (
            float(result.time_to_converge)
            if result.time_to_converge is not None
            else None
        ),
        "final_matching": [list(pair) for pair in sorted(result.final_matching.pairs())],
    }


# -- trace catalogue ------------------------------------------------------------

SWARM_TRACES = {
    "swarm_static": {
        "config": dict(
            leechers=10, seeds=1, piece_count=24, rounds=8,
            start_completion=0.3, announce_size=6,
        ),
        "scenario": "static",
        "seed": 101,
    },
    "swarm_poisson": {
        "config": dict(
            leechers=10, seeds=1, piece_count=24, rounds=10,
            start_completion=0.3, announce_size=6,
        ),
        "scenario": "poisson",
        "seed": 102,
    },
    "swarm_flashcrowd": {
        "config": dict(
            leechers=8, seeds=1, piece_count=20, rounds=10,
            start_completion=0.4, announce_size=5,
        ),
        "scenario": "flashcrowd",
        "seed": 103,
    },
    # Behavior-layer traces: the mix travels as a spec string so the spec
    # dict stays JSON-stable.
    "swarm_freerider": {
        "config": dict(
            leechers=10, seeds=1, piece_count=24, rounds=10,
            start_completion=0.3, announce_size=6,
            behaviors="free_rider:0.3,never_upload:0.1",
        ),
        "scenario": "poisson",
        "seed": 106,
    },
    "swarm_nat_flashcrowd": {
        "config": dict(
            leechers=8, seeds=1, piece_count=20, rounds=10,
            start_completion=0.4, announce_size=5,
            behaviors="nat_limited:0.4,locality_biased:0.3,groups:3",
        ),
        "scenario": "flashcrowd",
        "seed": 107,
    },
    # Fault traces: slow configs (low seed bandwidth, many pieces) so the
    # fault windows open while the swarm is still mid-download.
    "swarm_tracker_outage": {
        "config": dict(
            leechers=10, seeds=1, piece_count=60, rounds=14,
            start_completion=0.3, announce_size=6,
            seed_upload_kbps=300.0, faults="outage:3+4,loss:0.05",
        ),
        "scenario": "poisson",
        "seed": 108,
    },
    "swarm_partition_crash": {
        "config": dict(
            leechers=8, seeds=1, piece_count=60, rounds=14,
            start_completion=0.4, announce_size=5,
            seed_upload_kbps=300.0, faults="partition:2+5/2,crash:3@4~4",
        ),
        "scenario": "flashcrowd",
        "seed": 109,
    },
    # Resilience traces: the policy travels as a preset string.  Failover
    # pins the replica-targeted announce walk; the PEX trace blacks out
    # every replica so gossip, bootstrap, eviction and purge all land in
    # the trace (the crash victims never rejoin).
    "swarm_failover": {
        "config": dict(
            leechers=10, seeds=1, piece_count=60, rounds=14,
            start_completion=0.3, announce_size=6,
            seed_upload_kbps=300.0, faults="outage:4+3,outage:8+2/1",
            resilience="failover",
        ),
        "scenario": "poisson",
        "seed": 110,
    },
    "swarm_pex_outage": {
        "config": dict(
            leechers=10, seeds=1, piece_count=60, rounds=14,
            start_completion=0.3, announce_size=6,
            seed_upload_kbps=300.0, faults="outage:5+4/all,crash:4@3",
            resilience="full",
        ),
        "scenario": "poisson",
        "seed": 111,
    },
}

TELEMETRY_TRACES = {
    "telemetry_poisson": {
        "config": dict(
            leechers=10, seeds=1, piece_count=24, rounds=12,
            start_completion=0.3, announce_size=6,
        ),
        "scenario": "poisson",
        "seed": 104,
        "observer": dict(
            scrape_interval=2, poll_interval=2, poll_budget=5,
            confirm_threshold=0.98,
        ),
    },
    "telemetry_flashcrowd": {
        "config": dict(
            leechers=8, seeds=1, piece_count=20, rounds=12,
            start_completion=0.4, announce_size=5,
        ),
        "scenario": "flashcrowd",
        "seed": 105,
        "observer": dict(
            scrape_interval=1, poll_interval=3, poll_budget=4,
            confirm_threshold=0.98,
        ),
    },
}

MATCHING_TRACES = {
    "matching_best_mate": dict(n=30, expected_degree=8.0, seed=201, max_base_units=20.0),
    "matching_two_slots": dict(n=24, expected_degree=6.0, slots=2, seed=202, max_base_units=20.0),
    "matching_random_strategy": dict(
        n=20, expected_degree=10.0, strategy="random", seed=203, max_base_units=15.0
    ),
}


def compute_swarm_trace(name: str) -> Dict:
    spec = SWARM_TRACES[name]
    results = {}
    for engine in ("reference", "fast"):
        config = SwarmConfig(**spec["config"])
        simulator = SwarmSimulator(
            config, seed=spec["seed"], engine=engine, scenario=spec["scenario"]
        )
        results[engine] = serialize_swarm_result(simulator.run())
    assert results["reference"] == results["fast"], (
        f"engines diverged while tracing {name}"
    )
    return {"kind": "swarm", "spec": {**spec, "name": name}, "result": results["reference"]}


def compute_telemetry_trace(name: str) -> Dict:
    spec = TELEMETRY_TRACES[name]
    swarms = {}
    campaigns = {}
    for engine in ("reference", "fast"):
        config = SwarmConfig(**spec["config"])
        result = SwarmSimulator(
            config,
            seed=spec["seed"],
            engine=engine,
            scenario=spec["scenario"],
            observer=ObserverConfig(**spec["observer"]),
        ).run()
        swarms[engine] = serialize_swarm_result(result)
        campaigns[engine] = serialize_observed(result.observed)
    assert swarms["reference"] == swarms["fast"], (
        f"engines diverged while tracing {name}"
    )
    assert campaigns["reference"] == campaigns["fast"], (
        f"observed records diverged while tracing {name}"
    )
    return {
        "kind": "telemetry",
        "spec": {**spec, "name": name},
        "result": {"swarm": swarms["reference"], "observed": campaigns["reference"]},
    }


def compute_matching_trace(name: str) -> Dict:
    spec = MATCHING_TRACES[name]
    results = {
        engine: serialize_convergence(simulate_convergence(**spec, engine=engine))
        for engine in ("reference", "fast")
    }
    assert results["reference"] == results["fast"], (
        f"engines diverged while tracing {name}"
    )
    return {"kind": "matching", "spec": {**spec, "name": name}, "result": results["reference"]}


# -- the tests ------------------------------------------------------------------


def check_golden(name: str, trace: Dict, regen: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(trace, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"golden trace {path.name} is missing; run pytest "
        f"tests/test_golden_traces.py --regen-golden and commit it"
    )
    stored = json.loads(path.read_text())
    assert trace["spec"] == stored["spec"], (
        f"{name}: trace spec changed; regenerate the golden file "
        f"(--regen-golden) and review the diff"
    )
    assert trace["result"] == stored["result"], (
        f"{name}: deterministic output drifted from the committed golden "
        f"trace -- if intentional, regenerate with --regen-golden and "
        f"commit the JSON diff"
    )


@pytest.mark.parametrize("name", sorted(SWARM_TRACES))
def test_swarm_golden_trace(name, regen_golden):
    check_golden(name, compute_swarm_trace(name), regen_golden)


@pytest.mark.parametrize("name", sorted(TELEMETRY_TRACES))
def test_telemetry_golden_trace(name, regen_golden):
    check_golden(name, compute_telemetry_trace(name), regen_golden)


@pytest.mark.parametrize("name", sorted(MATCHING_TRACES))
def test_matching_golden_trace(name, regen_golden):
    check_golden(name, compute_matching_trace(name), regen_golden)


def test_golden_files_have_no_strays():
    """Every committed golden file corresponds to a trace in the catalogue."""
    known = set(SWARM_TRACES) | set(TELEMETRY_TRACES) | set(MATCHING_TRACES)
    for path in GOLDEN_DIR.glob("*.json"):
        assert path.stem in known, f"stray golden trace {path.name}"
