"""Tests for the disorder distance and the Mean Max Offset."""

from __future__ import annotations

import pytest

from repro.core.acceptance import AcceptanceGraph
from repro.core.matching import Matching
from repro.core.metrics import (
    collaboration_graph,
    disorder,
    match_rate,
    matching_distance,
    mean_max_offset,
    mean_max_offset_exact_constant,
    unmatched_peers,
)
from repro.core.peer import PeerPopulation
from repro.core.ranking import GlobalRanking
from repro.core.stable import stable_configuration


def _one_matching_setup(n: int = 6):
    population = PeerPopulation.ranked(n, slots=1)
    acceptance = AcceptanceGraph.complete(population)
    ranking = GlobalRanking.from_population(population)
    return population, acceptance, ranking


class TestMatchingDistance:
    def test_distance_to_self_is_zero(self):
        _, acceptance, ranking = _one_matching_setup()
        matching = stable_configuration(acceptance, ranking)
        assert matching_distance(matching, matching, ranking) == 0.0

    def test_complete_vs_empty_is_one(self):
        # The paper's normalisation: a perfect 1-matching is at distance 1
        # from the empty configuration.
        _, acceptance, ranking = _one_matching_setup(6)
        empty = Matching(acceptance)
        full = Matching(acceptance)
        full.match(1, 2)
        full.match(3, 4)
        full.match(5, 6)
        assert matching_distance(full, empty, ranking) == pytest.approx(1.0)

    def test_symmetry(self):
        _, acceptance, ranking = _one_matching_setup(6)
        a = Matching(acceptance)
        a.match(1, 2)
        b = Matching(acceptance)
        b.match(1, 6)
        assert matching_distance(a, b, ranking) == pytest.approx(
            matching_distance(b, a, ranking)
        )

    def test_triangle_like_monotonicity(self):
        # A configuration sharing more pairs with the stable one is closer.
        _, acceptance, ranking = _one_matching_setup(6)
        stable = stable_configuration(acceptance, ranking)
        close = stable.copy()
        close.unmatch(5, 6)
        far = Matching(acceptance)
        assert disorder(close, stable, ranking) < disorder(far, stable, ranking)

    def test_disagreeing_mates_counted_per_peer(self):
        _, acceptance, ranking = _one_matching_setup(4)
        a = Matching(acceptance)
        a.match(1, 2)
        a.match(3, 4)
        b = Matching(acceptance)
        b.match(1, 3)
        b.match(2, 4)
        # Peer 1: |2-3| = 1, peer 2: |1-4| = 3, peer 3: |4-1| = 3, peer 4: |3-2| = 1.
        expected = (1 + 3 + 3 + 1) * 2 / (4 * 5)
        assert matching_distance(a, b, ranking) == pytest.approx(expected)

    def test_empty_population_distance_zero(self):
        population = PeerPopulation.ranked(3, slots=1)
        acceptance = AcceptanceGraph.complete(population)
        ranking = GlobalRanking.from_population(population)
        other_population = PeerPopulation.ranked(3, slots=1, first_id=10)
        other_acceptance = AcceptanceGraph.complete(other_population)
        a = Matching(acceptance)
        b = Matching(other_acceptance)
        assert matching_distance(a, b, ranking) == 0.0


class TestMeanMaxOffset:
    def test_closed_form_small_values(self):
        # Paper Table 1, constant matching: 1.67, 2.5, 3.2, 4, 4.71, 5.5.
        expected = {2: 5 / 3, 3: 2.5, 4: 3.2, 5: 4.0, 6: 33 / 7, 7: 5.5}
        for b0, value in expected.items():
            assert mean_max_offset_exact_constant(b0) == pytest.approx(value, abs=0.01)

    def test_closed_form_limit(self):
        # MMO(b0) -> 3/4 b0 as b0 grows.
        assert mean_max_offset_exact_constant(400) / 400 == pytest.approx(0.75, abs=0.01)

    def test_closed_form_edge_cases(self):
        assert mean_max_offset_exact_constant(0) == 0.0
        assert mean_max_offset_exact_constant(1) == 1.0
        with pytest.raises(ValueError):
            mean_max_offset_exact_constant(-1)

    def test_empirical_matches_closed_form_on_complete_graph(self):
        population = PeerPopulation.ranked(12, slots=3)
        acceptance = AcceptanceGraph.complete(population)
        ranking = GlobalRanking.from_population(population)
        stable = stable_configuration(acceptance, ranking)
        assert mean_max_offset(stable, ranking) == pytest.approx(
            mean_max_offset_exact_constant(3)
        )

    def test_skip_unmatched_flag(self):
        population = PeerPopulation.ranked(3, slots=1)
        acceptance = AcceptanceGraph.complete(population)
        ranking = GlobalRanking.from_population(population)
        matching = Matching(acceptance)
        matching.match(1, 2)
        assert mean_max_offset(matching, ranking, skip_unmatched=True) == 1.0
        assert mean_max_offset(matching, ranking, skip_unmatched=False) == pytest.approx(2 / 3)


class TestAuxiliaryMetrics:
    def test_unmatched_peers_and_match_rate(self):
        population = PeerPopulation.ranked(5, slots=1)
        acceptance = AcceptanceGraph.complete(population)
        matching = stable_configuration(acceptance)
        assert unmatched_peers(matching) == [5]
        assert match_rate(matching) == pytest.approx(4 / 5)

    def test_collaboration_graph(self):
        population = PeerPopulation.ranked(4, slots=1)
        acceptance = AcceptanceGraph.complete(population)
        matching = stable_configuration(acceptance)
        graph = collaboration_graph(matching)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(3, 4)
        assert graph.edge_count == 2
