"""Figure 2: re-convergence after removing one peer from the stable state.

Paper setting: 1000 peers, 1-matching, 10 neighbors per peer; peers 1, 100,
300 and 600 are removed in turn.  Disorder stays small and convergence takes
less than d base units; removing a good peer causes more disorder than
removing a bad one (domino effect).
"""

from __future__ import annotations

from conftest import print_series_summary

from repro.experiments import figure2_peer_removal

REMOVED_PEERS = (1, 100, 300, 600)


def _run():
    return figure2_peer_removal(
        REMOVED_PEERS, n=1000, expected_degree=10.0, seed=3, max_base_units=10.0
    )


def test_figure2_peer_removal(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_series_summary("Figure 2: disorder after a single peer removal", series)
    max_disorders = {
        label: float(data["max_disorder"][0]) for label, data in series.items()
    }
    # Disorder after an atomic alteration stays tiny (paper: ~0.01 scale).
    assert all(value < 0.05 for value in max_disorders.values())
    # Domino effect: removing the best peer is at least as disruptive as
    # removing a low-ranked one.
    assert max_disorders["peer 1 removed"] >= max_disorders["peer 600 removed"]
