"""Table 1: clustering and stratification properties in a complete knowledge graph.

Paper values (constant b0-matching): cluster size b0 + 1 and
MMO = 1.67, 2.5, 3.2, 4, 4.71, 5.5 for b0 = 2..7.
With b ~ N(b, 0.2) the cluster size explodes (roughly factorially in b)
while the MMO falls below the constant value.
"""

from __future__ import annotations

from repro.experiments import table1_clustering

B_VALUES = (2, 3, 4, 5, 6, 7)
PAPER_CONSTANT_MMO = {2: 1.67, 3: 2.5, 4: 3.2, 5: 4.0, 6: 4.71, 7: 5.5}


def _run():
    return table1_clustering(B_VALUES, sigma=0.2, repetitions=2, seed=11)


def test_table1_clustering(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + table.to_text())
    rows = {int(row["b"]): row for row in table.to_records()}
    for b in B_VALUES:
        row = rows[b]
        # Constant-matching columns are exact.
        assert row["constant_cluster_size"] == b + 1
        assert abs(row["constant_mmo"] - PAPER_CONSTANT_MMO[b]) < 0.01
        # Variable matching: clusters are (much) larger, MMO is smaller.
        assert row["normal_cluster_size"] > row["constant_cluster_size"]
        assert row["normal_mmo"] < row["constant_mmo"]
    # The explosion accelerates with b (factorial-style growth).
    assert rows[5]["normal_cluster_size"] > 3 * rows[3]["normal_cluster_size"]
    assert rows[7]["normal_cluster_size"] > 3 * rows[5]["normal_cluster_size"]
