"""Figures 4 and 5: clustering of constant b-matching on a complete graph.

Constant b0-matching shatters the collaboration graph into (b0+1)-cliques
(Figure 4); granting one extra connection to the best peer reconnects the
whole graph (Figure 5).
"""

from __future__ import annotations

from repro.experiments import figure4_figure5_clusters


def _run():
    return figure4_figure5_clusters(b0=2, n=3 * 1000)


def test_figure4_figure5_clusters(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + table.to_text())
    rows = table.to_records()
    constant, extra = rows
    # Figure 4: n/(b0+1) disjoint cliques of size b0+1.
    assert constant["largest_cluster"] == 3
    assert constant["clusters"] == 1000
    assert constant["connected"] is False
    # Figure 5: a single extra connection merges everything.
    assert extra["connected"] is True
    assert extra["largest_cluster"] == 3000
