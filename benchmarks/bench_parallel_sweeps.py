"""Parallel sweep orchestration: pool speedup and result-cache replay.

``src/repro/sim/parallel.py`` fans the replications of a sweep out over a
``spawn`` process pool and (optionally) caches every ``(config, seed,
engine, version)`` point on disk.  This benchmark gates the three claims
that subsystem makes, on a paper-scale Figure 6 sweep (8 sigma points,
N(6, sigma) matching on a complete graph):

1. **Throughput** -- ``workers=4`` completes the sweep >= 3x faster than
   ``workers=1``.  This gate needs real cores: when fewer than 4 CPUs are
   available (`os.cpu_count()` / affinity) the speedup is still measured
   and reported, but the gate is reported as skipped instead of failing
   the run -- a 1-core container cannot express a parallel speedup.
2. **Determinism** -- the serial, parallel and cache-replayed sweeps
   return bit-identical tables (asserted unconditionally).
3. **Cache** -- re-running the sweep against a warm cache takes < 10% of
   the cold time (asserted unconditionally; replaying JSON beats
   re-simulating on any hardware).

Run headlessly (writes ``BENCH_parallel_sweeps.json`` in the repo root):

    python benchmarks/bench_parallel_sweeps.py --quick    # CI gate sizes
    python benchmarks/bench_parallel_sweeps.py            # adds a deeper sweep

or through pytest: ``pytest benchmarks/bench_parallel_sweeps.py -s``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.experiments.figures import figure6_phase_transition
from repro.sim.parallel import ResultCache

SEED = 2007  # ICDCS'07
SIGMAS = [0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.0]  # the 8-point sweep
B_MEAN = 6.0
WORKERS = 4
REQUIRED_SPEEDUP = 3.0
REQUIRED_WARM_FRACTION = 0.10
# Per-task compute must dwarf the pool spawn cost for the 3x gate to have
# margin on a 4-vCPU CI runner (perfect scaling tops out at 4x): n=500k is
# ~2.2 s per task, 24 tasks, ~53 s serial.
QUICK_N = 500_000
QUICK_REPETITIONS = 3
FULL_N = 1_000_000
FULL_REPETITIONS = 3


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_sweep(
    n: int, repetitions: int, *, workers: int, cache: "Path | None"
) -> Dict[str, object]:
    start = time.perf_counter()
    table = figure6_phase_transition(
        sigmas=SIGMAS,
        b_mean=B_MEAN,
        n=n,
        repetitions=repetitions,
        seed=SEED,
        engine="reference",
        workers=workers,
        cache=cache,
    )
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "records": table.to_records()}


def run_measurement(n: int, repetitions: int) -> Dict[str, object]:
    """Serial-cold (filling a cache), parallel, and warm-cache replays."""
    tasks = len(SIGMAS) * repetitions
    cpus = _available_cpus()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache_dir = Path(tmp)
        serial = _run_sweep(n, repetitions, workers=1, cache=cache_dir)
        parallel = _run_sweep(n, repetitions, workers=WORKERS, cache=None)
        if (
            cpus >= WORKERS
            and serial["seconds"] / parallel["seconds"] < REQUIRED_SPEEDUP
        ):
            # One retry before an enforced gate fails: the first pool pays
            # cold OS caches (interpreter + numpy import per worker), and a
            # noisy-neighbor blip should not fail CI on correct code.
            retry = _run_sweep(n, repetitions, workers=WORKERS, cache=None)
            if retry["seconds"] < parallel["seconds"]:
                parallel = retry
        warm = _run_sweep(n, repetitions, workers=1, cache=cache_dir)
        cache = ResultCache(cache_dir)
        entries = sum(1 for _ in cache.directory.rglob("*.json"))

    if serial["records"] != parallel["records"]:
        raise AssertionError(
            f"workers={WORKERS} diverged from workers=1 on the n={n} sweep"
        )
    if serial["records"] != warm["records"]:
        raise AssertionError(f"cache replay diverged from the cold run (n={n})")

    speedup = serial["seconds"] / parallel["seconds"]
    warm_fraction = warm["seconds"] / serial["seconds"]
    print(
        f"n={n:>9,} ({tasks} tasks): serial={serial['seconds']:7.2f}s  "
        f"workers={WORKERS}={parallel['seconds']:7.2f}s  speedup={speedup:4.2f}x  "
        f"warm-cache={warm['seconds']:6.3f}s ({warm_fraction * 100:.1f}% of cold)  "
        f"[{cpus} cpus]"
    )
    return {
        "n": n,
        "repetitions": repetitions,
        "tasks": tasks,
        "workers": WORKERS,
        "cpus": cpus,
        "serial_seconds": round(serial["seconds"], 4),
        "parallel_seconds": round(parallel["seconds"], 4),
        "warm_seconds": round(warm["seconds"], 4),
        "speedup": round(speedup, 2),
        "warm_fraction": round(warm_fraction, 4),
        "cache_entries": entries,
        "identical_tables": True,
    }


def build_payload(rows: List[Dict[str, object]], mode: str) -> Dict[str, object]:
    """Assemble the JSON payload; the CLI and pytest paths share this shape."""
    gate_row = rows[0]
    return {
        "benchmark": "parallel_sweeps",
        "workload": {
            "experiment": "figure6 sigma sweep",
            "sigmas": SIGMAS,
            "b_mean": B_MEAN,
            "engine": "reference",
            "seed": SEED,
        },
        "mode": mode,
        "results": rows,
        "speedup": gate_row["speedup"],
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_gate_enforced": gate_row["cpus"] >= WORKERS,
        "warm_fraction": gate_row["warm_fraction"],
        "required_warm_fraction": REQUIRED_WARM_FRACTION,
    }


def check_gates(payload: Dict[str, object]) -> List[str]:
    """Return failure messages for every violated gate (empty = pass)."""
    failures: List[str] = []
    if payload["speedup_gate_enforced"]:
        if payload["speedup"] < REQUIRED_SPEEDUP:
            failures.append(
                f"workers={WORKERS} speedup is {payload['speedup']:.2f}x "
                f"(required: >= {REQUIRED_SPEEDUP:.0f}x)"
            )
    else:
        print(
            f"NOTE: speedup gate skipped -- only "
            f"{payload['results'][0]['cpus']} CPU(s) available, the "
            f">= {REQUIRED_SPEEDUP:.0f}x @ workers={WORKERS} claim needs "
            f">= {WORKERS}; measured {payload['speedup']:.2f}x for the record"
        )
    if payload["warm_fraction"] >= REQUIRED_WARM_FRACTION:
        failures.append(
            f"warm-cache rerun took {payload['warm_fraction'] * 100:.1f}% of the "
            f"cold run (required: < {REQUIRED_WARM_FRACTION * 100:.0f}%)"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI-style run: the n={QUICK_N:,} gate sweep only",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    rows = [run_measurement(QUICK_N, QUICK_REPETITIONS)]
    if not args.quick:
        rows.append(run_measurement(FULL_N, FULL_REPETITIONS))

    payload = build_payload(rows, mode="quick" if args.quick else "full")
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("parallel_sweeps", payload, args.output)
    print(f"wrote {path}")

    failures = check_gates(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    enforced = "enforced" if payload["speedup_gate_enforced"] else "skipped (cpus)"
    print(
        f"PASS: speedup={payload['speedup']:.2f}x (gate {enforced}), "
        f"warm-cache rerun at {payload['warm_fraction'] * 100:.1f}% of cold, "
        f"tables bit-identical across serial/parallel/cached"
    )
    return 0


def test_parallel_sweeps_quick():
    """Pytest entry point: the quick sweep must clear every applicable gate."""
    rows = [run_measurement(QUICK_N, QUICK_REPETITIONS)]
    from conftest import write_benchmark_json

    payload = build_payload(rows, mode="quick")
    write_benchmark_json("parallel_sweeps", payload)
    assert not check_gates(payload)


if __name__ == "__main__":
    raise SystemExit(main())
