"""Figure 8: mate-rank distributions in independent 1-matching (n=5000, p=0.5%).

Three regimes: a well-ranked peer (200) pairs downwards with a near-geometric
tail; a central peer (2500) has a symmetric distribution that merely shifts
with its rank (stratification / finite-horizon property); a badly-ranked
peer (4800) sees the shifted distribution truncated by the end of the
ranking and keeps a positive probability of staying unmatched.
"""

from __future__ import annotations


from repro.analytical.distributions import MateDistribution, shift_similarity
from repro.analytical.one_matching import independent_one_matching
from repro.experiments import figure8_neighbor_distributions

N = 5000
P = 0.005
PEERS = (200, 2500, 4800)


def _run():
    return figure8_neighbor_distributions(PEERS, n=N, p=P)


def test_figure8_neighbor_distributions(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nFigure 8: distribution summaries")
    for peer in PEERS:
        print(f"  peer {peer}: " + ", ".join(f"{k}={v:.4g}" for k, v in stats[peer].items()))

    good, central, bad = (stats[p] for p in PEERS)
    # Good peer: pairs strictly downwards on average, asymmetric to the right.
    assert good["mean_offset"] > 0
    assert good["asymmetry"] > 0.1
    assert good["unmatched_probability"] < 0.01
    # Central peer: symmetric, centred on its own rank, always matched.
    assert abs(central["mean_offset"]) < 0.05 * N
    assert abs(central["asymmetry"]) < 0.05
    # Bad peer: truncated distribution, positive unmatched probability.
    assert bad["unmatched_probability"] > 0.02
    assert bad["mean_offset"] < 0

    # Stratification: central distributions are pure shifts of each other.
    model = independent_one_matching(N, P, rows=[2000, 2500, 3000])
    a = MateDistribution(2000, model.row(2000))
    b = MateDistribution(3000, model.row(3000))
    assert shift_similarity(a, b) > 0.97
