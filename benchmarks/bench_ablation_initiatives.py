"""Ablation: initiative strategies (best-mate vs decremental vs random).

The paper's Theorem 1 guarantees convergence for any active-initiative
sequence; the strategies differ only in how many initiatives they need.
This ablation quantifies that gap, which is the design choice DESIGN.md
calls out (how much knowledge about the neighborhood a peer must maintain).
"""

from __future__ import annotations

from repro.core.dynamics import simulate_convergence

N = 400
DEGREE = 10.0
STRATEGIES = ("best-mate", "decremental", "random")


def _run():
    results = {}
    for strategy in STRATEGIES:
        outcome = simulate_convergence(
            N, DEGREE, strategy=strategy, seed=23, max_base_units=400,
            samples_per_base_unit=1,
        )
        results[strategy] = outcome
    return results


def test_ablation_initiative_strategies(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nInitiative-strategy ablation (n=400, d=10, 1-matching):")
    for strategy, outcome in results.items():
        print(
            f"  {strategy:12s}: converged={outcome.converged} "
            f"time={outcome.time_to_converge} base units, "
            f"active={outcome.active_initiatives}"
        )
    # Every strategy converges (Theorem 1).
    assert all(outcome.converged for outcome in results.values())
    # Informed strategies converge at least as fast as blind random probing.
    assert (
        results["best-mate"].time_to_converge
        <= results["random"].time_to_converge
    )
