"""Engine scaling: reference vs fast matching engine at 1k / 10k / 100k peers.

Unlike the ``bench_fig*`` benchmarks this one tracks an implementation
claim rather than a paper figure: the vectorized array engine
(:mod:`repro.core.fast`) must beat the reference dictionary engine by at
least 5x at n = 10k peers on the Figure 1 workload (convergence from the
empty configuration on G(n, d), best-mate initiatives, d = 50).  Both
engines are driven through the public ``engine=`` switch with the same
seed, and since they are trajectory-identical the timed work is the same
simulation step for step -- the comparison is pure implementation cost.

Run headlessly (writes ``BENCH_engine_scaling.json`` in the repo root):

    python benchmarks/bench_engine_scaling.py --quick     # 1k + 10k
    python benchmarks/bench_engine_scaling.py             # 1k + 10k + 100k

or through pytest: ``pytest benchmarks/bench_engine_scaling.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.acceptance import AcceptanceGraph
from repro.core.dynamics import ConvergenceSimulator
from repro.core.peer import PeerPopulation
from repro.sim.random_source import RandomSource

EXPECTED_DEGREE = 50.0
MAX_BASE_UNITS = 8.0
SEED = 2007  # ICDCS'07
QUICK_SIZES = (1_000, 10_000)
FULL_SIZES = (1_000, 10_000, 100_000)
REQUIRED_SPEEDUP_AT_10K = 5.0


def _time_engine(
    acceptance: AcceptanceGraph, engine: str, seed: int
) -> Dict[str, float]:
    """Time one end-to-end run (stable computation + initiative process)."""
    source = RandomSource(seed)
    start = time.perf_counter()
    simulator = ConvergenceSimulator(
        acceptance, strategy="best-mate", source=source, engine=engine
    )
    result = simulator.run(max_base_units=MAX_BASE_UNITS)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "initiatives": result.initiatives,
        "active_initiatives": result.active_initiatives,
        "final_disorder": result.trajectory.values[-1],
        "converged": result.converged,
    }


def run_scaling(sizes) -> List[Dict[str, object]]:
    """Time both engines on identical workloads at each population size."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        population = PeerPopulation.ranked(n, slots=1)
        acceptance = AcceptanceGraph.erdos_renyi(
            population,
            expected_degree=EXPECTED_DEGREE,
            rng=RandomSource(SEED).stream("graph"),
        )
        fast = _time_engine(acceptance, "fast", SEED)
        reference = _time_engine(acceptance, "reference", SEED)
        # Identical seeds must mean identical simulations; a drift here
        # would invalidate the timing comparison (and the engine itself).
        if reference["final_disorder"] != fast["final_disorder"] or (
            reference["initiatives"] != fast["initiatives"]
        ):
            raise AssertionError(
                f"engines diverged at n={n}: "
                f"reference={reference}, fast={fast}"
            )
        speedup = reference["seconds"] / fast["seconds"]
        rows.append(
            {
                "n": n,
                "expected_degree": EXPECTED_DEGREE,
                "max_base_units": MAX_BASE_UNITS,
                "initiatives": reference["initiatives"],
                "reference_seconds": round(reference["seconds"], 4),
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"n={n:>7,}: reference={reference['seconds']:7.2f}s  "
            f"fast={fast['seconds']:6.2f}s  speedup={speedup:5.1f}x"
        )
    return rows


def build_payload(rows: List[Dict[str, object]], mode: str) -> Dict[str, object]:
    """Assemble the JSON payload; the CLI and pytest paths share this shape."""
    return {
        "benchmark": "engine_scaling",
        "workload": {
            "graph": "erdos-renyi",
            "expected_degree": EXPECTED_DEGREE,
            "slots": 1,
            "strategy": "best-mate",
            "max_base_units": MAX_BASE_UNITS,
            "seed": SEED,
        },
        "mode": mode,
        "results": rows,
        "speedup_at_10k": next(
            row["speedup"] for row in rows if row["n"] == 10_000
        ),
        "required_speedup_at_10k": REQUIRED_SPEEDUP_AT_10K,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-style run: n in {1k, 10k} only (the 5x gate still applies)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    rows = run_scaling(sizes)

    payload = build_payload(rows, mode="quick" if args.quick else "full")
    speedup_at_10k = payload["speedup_at_10k"]
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("engine_scaling", payload, args.output)
    print(f"wrote {path}")

    if speedup_at_10k < REQUIRED_SPEEDUP_AT_10K:
        print(
            f"FAIL: fast engine speedup at n=10k is {speedup_at_10k:.1f}x "
            f"(required: >= {REQUIRED_SPEEDUP_AT_10K:.0f}x)"
        )
        return 1
    print(
        f"PASS: fast engine is {speedup_at_10k:.1f}x faster at n=10k "
        f"(required: >= {REQUIRED_SPEEDUP_AT_10K:.0f}x)"
    )
    return 0


def test_engine_scaling_quick():
    """Pytest entry point: the quick sizes must clear the 5x gate."""
    rows = run_scaling(QUICK_SIZES)
    from conftest import write_benchmark_json

    payload = build_payload(rows, mode="quick")
    write_benchmark_json("engine_scaling", payload)
    assert payload["speedup_at_10k"] >= REQUIRED_SPEEDUP_AT_10K


if __name__ == "__main__":
    raise SystemExit(main())
