"""Swarm-engine scaling: reference vs fast swarm simulator at 1k / 5k leechers.

Like ``bench_engine_scaling.py`` this tracks an implementation claim rather
than a paper figure: the packed-bit array swarm engine
(:mod:`repro.bittorrent.fast`) must beat the reference dictionary simulator
by at least 5x at 5,000 leechers on a post-flash-crowd Tit-for-Tat workload
(Saroiu-style bandwidths, rarest-first selection, 30% bootstrap).  Both
engines run through the public ``engine=`` switch with the same seed and
are bit-identical (checksummed below), so the timed work is the same swarm
round for round -- the comparison is pure implementation cost.

The full mode adds a fast-engine-only row at 50k leechers: the scale the
array engine unlocks (flash crowds, seed-starved swarms) where the
reference simulator is no longer practical to time.

Run headlessly (writes ``BENCH_swarm_scaling.json`` in the repo root):

    python benchmarks/bench_swarm_scaling.py --quick     # 1k + 5k
    python benchmarks/bench_swarm_scaling.py             # 1k + 5k + 50k (fast only)

or through pytest: ``pytest benchmarks/bench_swarm_scaling.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator

SEED = 2007  # ICDCS'07
TIMED_SIZES = (1_000, 5_000)  # both engines; full mode adds the showcase
SHOWCASE_SIZE = 50_000  # fast engine only (full mode)
REQUIRED_SPEEDUP_AT_5K = 5.0
GATE_SIZE = 5_000


def _swarm_config(leechers: int) -> SwarmConfig:
    """The timed workload: a post-flash-crowd swarm, ~10 rechoke rounds."""
    return SwarmConfig(
        leechers=leechers,
        seeds=max(3, leechers // 2_000),
        piece_count=300,
        rounds=10,
        start_completion=0.3,
        seed_upload_kbps=5_000.0,
        announce_size=20,
    )


def _checksum(result) -> Dict[str, float]:
    """A few exact aggregates; engines diverging here invalidates the timing."""
    return {
        "completed": result.completed,
        "rounds_run": result.rounds_run,
        "total_downloaded_kbit": sum(
            p.downloaded_kbit for p in result.peers.values()
        ),
        "collaboration_pairs": len(result.collaboration_volume),
        "tft_pairs": len(result.tft_reciprocal_rounds),
    }


def _time_engine(leechers: int, engine: str) -> Dict[str, object]:
    config = _swarm_config(leechers)
    start = time.perf_counter()
    result = SwarmSimulator(config, seed=SEED, engine=engine).run()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "checksum": _checksum(result)}


def run_scaling(sizes, showcase: Optional[int] = None) -> List[Dict[str, object]]:
    """Time both engines on identical workloads at each swarm size."""
    rows: List[Dict[str, object]] = []
    for leechers in sizes:
        fast = _time_engine(leechers, "fast")
        reference = _time_engine(leechers, "reference")
        if reference["checksum"] != fast["checksum"]:
            raise AssertionError(
                f"engines diverged at leechers={leechers}: "
                f"reference={reference['checksum']}, fast={fast['checksum']}"
            )
        speedup = reference["seconds"] / fast["seconds"]
        rows.append(
            {
                "leechers": leechers,
                "reference_seconds": round(reference["seconds"], 4),
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": round(speedup, 2),
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={leechers:>7,}: reference={reference['seconds']:7.2f}s  "
            f"fast={fast['seconds']:6.2f}s  speedup={speedup:5.1f}x"
        )
    if showcase:
        fast = _time_engine(showcase, "fast")
        rows.append(
            {
                "leechers": showcase,
                "reference_seconds": None,
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": None,
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={showcase:>7,}: reference=   (skipped)  "
            f"fast={fast['seconds']:6.2f}s  (fast engine only)"
        )
    return rows


def build_payload(rows: List[Dict[str, object]], mode: str) -> Dict[str, object]:
    """Assemble the JSON payload; the CLI and pytest paths share this shape."""
    return {
        "benchmark": "swarm_scaling",
        "workload": {
            "seeds": "max(3, leechers // 2000)",
            "piece_count": 300,
            "rounds": 10,
            "start_completion": 0.3,
            "piece_selection": "rarest-first",
            "announce_size": 20,
            "bandwidths": "saroiu-like mixture",
            "seed": SEED,
        },
        "mode": mode,
        "results": rows,
        "speedup_at_5k": next(
            row["speedup"] for row in rows if row["leechers"] == GATE_SIZE
        ),
        "required_speedup_at_5k": REQUIRED_SPEEDUP_AT_5K,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-style run: 1k + 5k only (the 5x gate still applies)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    showcase = None if args.quick else SHOWCASE_SIZE
    rows = run_scaling(TIMED_SIZES, showcase)

    payload = build_payload(rows, mode="quick" if args.quick else "full")
    speedup_at_5k = payload["speedup_at_5k"]
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("swarm_scaling", payload, args.output)
    print(f"wrote {path}")

    if speedup_at_5k < REQUIRED_SPEEDUP_AT_5K:
        print(
            f"FAIL: fast swarm engine speedup at 5k leechers is "
            f"{speedup_at_5k:.1f}x (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
        )
        return 1
    print(
        f"PASS: fast swarm engine is {speedup_at_5k:.1f}x faster at 5k "
        f"leechers (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
    )
    return 0


def test_swarm_scaling_quick():
    """Pytest entry point: the quick sizes must clear the 5x gate."""
    rows = run_scaling(TIMED_SIZES)
    from conftest import write_benchmark_json

    payload = build_payload(rows, mode="quick")
    write_benchmark_json("swarm_scaling", payload)
    assert payload["speedup_at_5k"] >= REQUIRED_SPEEDUP_AT_5K


if __name__ == "__main__":
    raise SystemExit(main())
