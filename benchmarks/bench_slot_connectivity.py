"""Section 4.1 / Section 6: the slot-count arguments.

* Connectivity lower bound: a 1-regular collaboration graph can never be
  connected and the cycle is the only connected 2-regular graph, so obedient
  clients need at least 3 Tit-for-Tat slots (+1 optimistic = 4 by default).
* Rational peers drift towards a single TFT slot (the degenerate Nash
  equilibrium), which is why the default must not be left to rational
  optimisation.
"""

from __future__ import annotations

from repro.bittorrent.strategy import (
    is_connectivity_feasible,
    minimum_slots_for_connectivity,
    rational_best_response,
    recommended_default_slots,
    slot_deviation_payoffs,
)
from repro.stratification.clustering import analyze_complete_matching


def _run():
    payoffs = slot_deviation_payoffs(
        400.0,
        population_slots=3,
        candidate_slots=(1, 2, 3, 4, 5),
        n=400,
        expected_degree=20.0,
        seed=19,
    )
    best = rational_best_response(
        400.0, population_slots=3, candidate_slots=(1, 2, 3, 4, 5), n=400, seed=19
    )
    return payoffs, best


def test_slot_connectivity_and_nash(benchmark):
    payoffs, best = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nSlot-count deviation payoffs (population plays 3 TFT slots):")
    for outcome in payoffs:
        print(
            f"  slots={outcome.deviant_slots}: expected ratio "
            f"{outcome.deviant_efficiency:.3f} (baseline {outcome.baseline_efficiency:.3f})"
        )
    print(f"  rational best response: {best} slot(s)")

    # Connectivity: b0 < 3 cannot give a robust connected TFT graph.
    assert minimum_slots_for_connectivity() == 3
    assert not is_connectivity_feasible(1, 1000)
    assert recommended_default_slots()["total"] == 4
    # Constant 1- and 2-matching yield tiny clusters; 3-matching much larger.
    assert analyze_complete_matching([1] * 1000).largest_cluster == 2
    assert analyze_complete_matching([2] * 1000).largest_cluster == 3

    # Nash drift: the rational best response is to keep a single TFT slot.
    assert best == 1
    by_slots = {o.deviant_slots: o.deviant_efficiency for o in payoffs}
    assert by_slots[1] >= by_slots[3]
