"""Scenario-engine scaling: reference vs fast swarm simulator under churn.

``bench_swarm_scaling.py`` times the two swarm engines on the paper's
*fixed* post-flash-crowd population; this benchmark times them on the
dynamic-membership workload the scenario subsystem
(:mod:`repro.bittorrent.scenarios`) unlocks: Poisson arrivals scaled to 2%
of the swarm per round, completed leechers lingering two rounds as seeds
before departing.  Churn is the hostile case for the fast engine -- every
membership change forces a CSR re-freeze of the edge arrays and the grown
bitfield rows -- and the hostile case for the reference tracker too (every
announce sorts the alive set), so the claim gated here is that the array
design keeps its >= 5x advantage at 5,000 leechers *while churning*, not
just on the static swarm it was born on.

Both engines run through the public ``engine=`` switch with the same seed
and scenario, and are bit-identical (checksummed below, arrivals and
departures included), so the timed work is the same churning swarm round
for round.

Run headlessly (writes ``BENCH_scenarios.json`` in the repo root):

    python benchmarks/bench_scenarios.py --quick     # 1k + 5k
    python benchmarks/bench_scenarios.py             # 1k + 5k + 20k flash crowd (fast only)

or through pytest: ``pytest benchmarks/bench_scenarios.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.bittorrent.scenarios import ScenarioSchedule
from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator

SEED = 2007  # ICDCS'07
TIMED_SIZES = (1_000, 5_000)  # both engines; full mode adds the showcase
SHOWCASE_SIZE = 20_000  # flash-crowd burst, fast engine only (full mode)
REQUIRED_SPEEDUP_AT_5K = 5.0
GATE_SIZE = 5_000


def _swarm_config(leechers: int) -> SwarmConfig:
    """The timed base swarm (the scenario below churns it)."""
    return SwarmConfig(
        leechers=leechers,
        seeds=max(3, leechers // 2_000),
        piece_count=300,
        rounds=10,
        start_completion=0.3,
        seed_upload_kbps=5_000.0,
        announce_size=20,
    )


def _churn_scenario(leechers: int) -> ScenarioSchedule:
    """Poisson joins at 2% of the swarm per round; completers linger 2 rounds."""
    return ScenarioSchedule(
        arrivals="poisson",
        arrival_rate=leechers / 50.0,
        departure="linger",
        linger_rounds=2,
    )


def _flashcrowd_scenario(leechers: int) -> ScenarioSchedule:
    """The showcase: half the swarm again arrives at once, mid-run."""
    return ScenarioSchedule(
        arrivals="flashcrowd",
        burst_round=3,
        burst_size=leechers // 2,
        departure="leave",
    )


def _checksum(result) -> Dict[str, float]:
    """A few exact aggregates; engines diverging here invalidates the timing."""
    return {
        "completed": result.completed,
        "rounds_run": result.rounds_run,
        "arrivals": result.arrivals,
        "departures": result.departures,
        "total_downloaded_kbit": sum(
            p.downloaded_kbit for p in result.peers.values()
        ),
        "collaboration_pairs": len(result.collaboration_volume),
        "tft_pairs": len(result.tft_reciprocal_rounds),
    }


def _time_engine(
    leechers: int, engine: str, scenario: ScenarioSchedule
) -> Dict[str, object]:
    config = _swarm_config(leechers)
    start = time.perf_counter()
    result = SwarmSimulator(
        config, seed=SEED, engine=engine, scenario=scenario
    ).run()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "checksum": _checksum(result)}


def run_scaling(sizes, showcase: Optional[int] = None) -> List[Dict[str, object]]:
    """Time both engines on the identical churning workload at each size."""
    rows: List[Dict[str, object]] = []
    for leechers in sizes:
        scenario = _churn_scenario(leechers)
        fast = _time_engine(leechers, "fast", scenario)
        reference = _time_engine(leechers, "reference", scenario)
        if reference["checksum"] != fast["checksum"]:
            raise AssertionError(
                f"engines diverged at leechers={leechers}: "
                f"reference={reference['checksum']}, fast={fast['checksum']}"
            )
        speedup = reference["seconds"] / fast["seconds"]
        rows.append(
            {
                "leechers": leechers,
                "scenario": "poisson-2pct-linger2",
                "reference_seconds": round(reference["seconds"], 4),
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": round(speedup, 2),
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={leechers:>7,} (churning): reference={reference['seconds']:7.2f}s  "
            f"fast={fast['seconds']:6.2f}s  speedup={speedup:5.1f}x  "
            f"arrivals={fast['checksum']['arrivals']}  "
            f"departures={fast['checksum']['departures']}"
        )
    if showcase:
        fast = _time_engine(showcase, "fast", _flashcrowd_scenario(showcase))
        rows.append(
            {
                "leechers": showcase,
                "scenario": "flashcrowd-half-swarm",
                "reference_seconds": None,
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": None,
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={showcase:>7,} (flash crowd +{showcase // 2:,}): "
            f"reference=   (skipped)  fast={fast['seconds']:6.2f}s  "
            f"(fast engine only)"
        )
    return rows


def build_payload(rows: List[Dict[str, object]], mode: str) -> Dict[str, object]:
    """Assemble the JSON payload; the CLI and pytest paths share this shape."""
    return {
        "benchmark": "scenarios",
        "workload": {
            "seeds": "max(3, leechers // 2000)",
            "piece_count": 300,
            "rounds": 10,
            "start_completion": 0.3,
            "piece_selection": "rarest-first",
            "announce_size": 20,
            "bandwidths": "saroiu-like mixture",
            "scenario": {
                "arrivals": "poisson",
                "arrival_rate": "leechers / 50 per round (2% churn)",
                "departure": "linger",
                "linger_rounds": 2,
            },
            "seed": SEED,
        },
        "mode": mode,
        "results": rows,
        "speedup_at_5k": next(
            row["speedup"] for row in rows if row["leechers"] == GATE_SIZE
        ),
        "required_speedup_at_5k": REQUIRED_SPEEDUP_AT_5K,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-style run: 1k + 5k only (the 5x gate still applies)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    showcase = None if args.quick else SHOWCASE_SIZE
    rows = run_scaling(TIMED_SIZES, showcase)

    payload = build_payload(rows, mode="quick" if args.quick else "full")
    speedup_at_5k = payload["speedup_at_5k"]
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("scenarios", payload, args.output)
    print(f"wrote {path}")

    if speedup_at_5k < REQUIRED_SPEEDUP_AT_5K:
        print(
            f"FAIL: fast engine speedup on the churning 5k swarm is "
            f"{speedup_at_5k:.1f}x (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
        )
        return 1
    print(
        f"PASS: fast engine is {speedup_at_5k:.1f}x faster on the churning "
        f"5k swarm (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
    )
    return 0


def test_scenarios_quick():
    """Pytest entry point: the churning quick sizes must clear the 5x gate."""
    rows = run_scaling(TIMED_SIZES)
    from conftest import write_benchmark_json

    payload = build_payload(rows, mode="quick")
    write_benchmark_json("scenarios", payload)
    assert payload["speedup_at_5k"] >= REQUIRED_SPEEDUP_AT_5K


if __name__ == "__main__":
    raise SystemExit(main())
