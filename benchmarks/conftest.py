"""Shared helpers for the benchmark harness.

Every benchmark reproduces one figure or table of the paper.  The benchmark
bodies print the regenerated rows/series (so ``pytest benchmarks/
--benchmark-only -s`` shows the paper-shaped output) and assert the
qualitative claims the paper makes about them; pytest-benchmark records the
wall-clock cost of regenerating each artefact.

Benchmarks that track performance claims (rather than figures) also run
headlessly without pytest -- e.g. ``python benchmarks/bench_engine_scaling.py
--quick`` -- and persist their numbers with :func:`write_benchmark_json` so
regressions are reproducible from the command line.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_benchmark_json(name: str, payload: dict, output: "Path | str | None" = None) -> Path:
    """Write a benchmark result payload to ``BENCH_<name>.json``.

    The file lands in the repository root by default (next to CHANGES.md)
    so successive runs are easy to diff; pass ``output`` to redirect.
    Returns the path written.
    """
    path = Path(output) if output is not None else REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_series_summary(title: str, series: dict) -> None:
    """Print a compact summary of a {label: {metric: array}} series dict."""
    print(f"\n{title}")
    for label, data in series.items():
        parts = []
        for key, values in data.items():
            try:
                if len(values) == 1:
                    parts.append(f"{key}={float(values[0]):.4g}")
            except TypeError:
                continue
        print(f"  {label}: " + ", ".join(parts))
