"""Shared helpers for the benchmark harness.

Every benchmark reproduces one figure or table of the paper.  The benchmark
bodies print the regenerated rows/series (so ``pytest benchmarks/
--benchmark-only -s`` shows the paper-shaped output) and assert the
qualitative claims the paper makes about them; pytest-benchmark records the
wall-clock cost of regenerating each artefact.
"""

from __future__ import annotations


def print_series_summary(title: str, series: dict) -> None:
    """Print a compact summary of a {label: {metric: array}} series dict."""
    print(f"\n{title}")
    for label, data in series.items():
        parts = []
        for key, values in data.items():
            try:
                if len(values) == 1:
                    parts.append(f"{key}={float(values[0]):.4g}")
            except TypeError:
                continue
        print(f"  {label}: " + ", ".join(parts))
