"""Figure 6: influence of sigma on cluster size and MMO for N(6, sigma) matching.

Paper setting: complete acceptance graph, slot budgets drawn from a rounded
normal with mean 6.  As soon as sigma produces heterogeneous samples
(sigma ~ 0.15) the mean cluster size explodes while the Mean Max Offset
drops below the constant-matching value (33/7 ~ 4.71).
"""

from __future__ import annotations

from repro.experiments import figure6_phase_transition
from repro.stratification.mmo import mmo_constant_matching

SIGMAS = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 1.5, 2.0]


def _run():
    return figure6_phase_transition(SIGMAS, b_mean=6.0, n=20000, repetitions=2, seed=7)


def test_figure6_phase_transition(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + table.to_text())
    rows = {row["sigma"]: row for row in table.to_records()}
    # sigma = 0: constant 6-matching -> clusters of 7, MMO = 33/7.
    assert abs(rows[0.0]["mean_cluster_size"] - 7.0) < 0.5
    assert abs(rows[0.0]["mean_max_offset"] - mmo_constant_matching(6)) < 0.05
    # Past the transition the cluster size has exploded ...
    assert rows[0.3]["mean_cluster_size"] > 20 * rows[0.0]["mean_cluster_size"]
    # ... while the MMO has dropped.
    assert rows[0.3]["mean_max_offset"] < rows[0.0]["mean_max_offset"]
