"""Figure 10: the upstream-bandwidth distribution fed into the Section 6 model.

The paper uses the Saroiu et al. Gnutella measurements; this repository
substitutes a log-normal mixture with density peaks at the same typical
access technologies.  The benchmark regenerates the cumulative curve and
checks its qualitative shape (wide spread over 4 orders of magnitude, most
hosts between modem and cable rates).
"""

from __future__ import annotations

import numpy as np

from repro.bittorrent.bandwidth import saroiu_like_distribution
from repro.experiments import figure10_bandwidth_cdf


def _run():
    return figure10_bandwidth_cdf(points=60)


def test_figure10_bandwidth_cdf(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + table.to_text(float_format=".3g"))
    upstream = np.asarray(table.column("upstream_kbps"), dtype=float)
    hosts = np.asarray(table.column("percentage_of_hosts"), dtype=float)
    # Monotone CDF spanning the full percentage range.
    assert np.all(np.diff(hosts) >= -1e-9)
    assert hosts[0] < 10.0 and hosts[-1] > 95.0
    # The spread covers 10 kbps .. 100 Mbps (Figure 10's x-axis).
    assert upstream[0] <= 10.0 * 1.01 and upstream[-1] >= 1e5 * 0.99

    distribution = saroiu_like_distribution()
    # Most hosts sit between modem and cable rates (the paper's "wide
    # distribution" with pronounced peaks at common access technologies).
    mass_low = float(distribution.cdf(2000.0) - distribution.cdf(50.0))
    assert mass_low > 0.6
