"""Figure 9: validating Algorithm 3 (independent b0-matching) against Monte-Carlo.

Paper setting: n = 5000, p = 1% (about 50 neighbors per peer), 2-matching,
peer 3000, one million simulated Erdős–Rényi graphs (weeks of computation).
The benchmark runs the same estimator at a reduced size with the same
average-degree regime; pass the paper parameters to
``repro.experiments.figure9_validation`` for the full-scale comparison.
"""

from __future__ import annotations

from repro.experiments import figure9_validation

N = 1500
P = 0.02          # ~30 acceptable peers on average
B0 = 2
SAMPLES = 150


def _run():
    return figure9_validation(n=N, p=P, b0=B0, samples=SAMPLES, seed=13)


def test_figure9_validation(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + table.to_text())
    rows = table.to_records()
    assert {row["choice"] for row in rows} == {1, 2}
    for row in rows:
        # Binned total variation between model and simulation stays small.
        assert row["total_variation"] < 0.2
        # Conditional mean mate ranks agree within a few percent of n.
        assert abs(row["mean_rank_model"] - row["mean_rank_simulation"]) < 0.05 * N
    # The first choice lands on better ranks than the second choice.
    first = next(r for r in rows if r["choice"] == 1)
    second = next(r for r in rows if r["choice"] == 2)
    assert first["mean_rank_model"] < second["mean_rank_model"]
