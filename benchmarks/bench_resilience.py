"""Resilience-layer scaling and the graceful-degradation headline.

``bench_faults.py`` times the engines while the substrate fails and the
clients sit defenseless; this benchmark arms the defenses
(:mod:`repro.bittorrent.resilience`) and gates two claims:

* **speedup** -- with multi-tracker failover, PEX gossip and
  dead-neighbor eviction all active under an outage schedule (one total
  blackout, one replica-targeted window, a mass crash with rejoin), the
  fast engine keeps its >= 5x advantage at 5,000 leechers.  The
  resilience paths are pure-Python bookkeeping plus two pinned batch
  draws, so the claim is that they stay off the vectorized hot path.
* **graceful degradation** -- on the ``outage-midrun`` preset the full
  policy's mean completion round stays within 15% of the fault-free
  baseline (the outage targets the first announce-list replica, so
  failover absorbs it), while the defenseless swarm is the one that
  drifts.  The off/failover/full curves land in the JSON payload.

Both engines run through the public ``engine=`` switch with the same seed
and schedule, and are bit-identical (checksummed below, resilience
counters included), so the timed work is the same resilient swarm round
for round.

Run headlessly (writes ``BENCH_resilience.json`` in the repo root):

    python benchmarks/bench_resilience.py --quick     # 1k + 5k
    python benchmarks/bench_resilience.py             # adds the 20k showcase

or through pytest: ``pytest benchmarks/bench_resilience.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

import numpy as np

from repro.bittorrent.swarm import (
    SwarmConfig,
    SwarmSimulator,
    stratification_index,
)

SEED = 2007  # ICDCS'07
TIMED_SIZES = (1_000, 5_000)  # both engines; full mode adds the showcase
SHOWCASE_SIZE = 20_000  # resilient swarm, fast engine only (full mode)
REQUIRED_SPEEDUP_AT_5K = 5.0
GATE_SIZE = 5_000
DEGRADATION_TOLERANCE = 0.15  # full-policy completion time vs fault-free

# One total blackout (PEX gossip carries the swarm), one replica-targeted
# window (failover absorbs it), and a mass crash with rejoin (keepalive 2
# evicts the victims and purges their stale registrations before they
# return), so every defense is on the timed path.
FAULTS = "outage:3+2/all,outage:6+3/1,crash:50@4~3"
POLICY = "trackers:3,pex:8,keepalive:2"
SCENARIO = "poisson"  # churn makes the blackout bootstrap real arrivals

# Graceful-degradation section: completion time and stratification index
# vs outage duration at each defense level (the outage windows target the
# preferred replica, so "off" suffers the full blackout while failover
# absorbs it), plus the outage-midrun gate against the fault-free
# baseline.
DEGRADATION_LEVELS = ("off", "failover", "full")
DEGRADATION_DURATIONS = (0, 4, 8, 16)
DEGRADATION_OUTAGE_START = 12
DEGRADATION_FAULTS = "outage-midrun"
DEGRADATION_LEECHERS = 300


def _swarm_config(
    leechers: int,
    faults: Optional[str],
    resilience: Optional[str],
    rounds: int = 10,
    piece_count: int = 500,
) -> SwarmConfig:
    """The timed resilient swarm (same shape as the fault benchmark)."""
    return SwarmConfig(
        leechers=leechers,
        seeds=max(3, leechers // 2_000),
        piece_count=piece_count,
        rounds=rounds,
        start_completion=0.3,
        seed_upload_kbps=5_000.0,
        announce_size=20,
        faults=faults,
        resilience=resilience,
    )


def _checksum(result) -> Dict[str, float]:
    """A few exact aggregates; engines diverging here invalidates the timing."""
    stats = result.resilience
    return {
        "completed": result.completed,
        "rounds_run": result.rounds_run,
        "arrivals": result.arrivals,
        "departures": result.departures,
        "total_downloaded_kbit": sum(
            p.downloaded_kbit for p in result.peers.values()
        ),
        "total_uploaded_kbit": sum(
            p.uploaded_kbit for p in result.peers.values()
        ),
        "collaboration_pairs": len(result.collaboration_volume),
        "tft_pairs": len(result.tft_reciprocal_rounds),
        "replica_announces": stats.replica_announces,
        "failover_announces": stats.failover_announces,
        "pex_introductions": stats.pex_introductions,
        "pex_bootstraps": stats.pex_bootstraps,
        "evictions": stats.evictions,
        "purges": stats.purges,
    }


def _time_engine(leechers: int, engine: str) -> Dict[str, object]:
    config = _swarm_config(leechers, FAULTS, POLICY)
    start = time.perf_counter()
    result = SwarmSimulator(
        config, seed=SEED, engine=engine, scenario=SCENARIO
    ).run()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "checksum": _checksum(result)}


def run_scaling(sizes, showcase: Optional[int] = None) -> List[Dict[str, object]]:
    """Time both engines on the identical resilient workload at each size."""
    rows: List[Dict[str, object]] = []
    for leechers in sizes:
        fast = _time_engine(leechers, "fast")
        reference = _time_engine(leechers, "reference")
        if reference["checksum"] != fast["checksum"]:
            raise AssertionError(
                f"engines diverged at leechers={leechers}: "
                f"reference={reference['checksum']}, fast={fast['checksum']}"
            )
        speedup = reference["seconds"] / fast["seconds"]
        rows.append(
            {
                "leechers": leechers,
                "faults": FAULTS,
                "resilience": POLICY,
                "scenario": SCENARIO,
                "reference_seconds": round(reference["seconds"], 4),
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": round(speedup, 2),
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={leechers:>7,} (resilient): reference={reference['seconds']:7.2f}s  "
            f"fast={fast['seconds']:6.2f}s  speedup={speedup:5.1f}x  "
            f"pex={fast['checksum']['pex_introductions']}"
        )
    if showcase:
        fast = _time_engine(showcase, "fast")
        rows.append(
            {
                "leechers": showcase,
                "faults": FAULTS,
                "resilience": POLICY,
                "scenario": SCENARIO,
                "reference_seconds": None,
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": None,
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={showcase:>7,} (resilient): reference=   (skipped)  "
            f"fast={fast['seconds']:6.2f}s  (fast engine only)"
        )
    return rows


def _degradation_point(faults: Optional[str], resilience: Optional[str]) -> Dict[str, object]:
    """One fast-engine run of the degradation workload; summary metrics."""
    config = _swarm_config(
        DEGRADATION_LEECHERS, faults, resilience, rounds=45, piece_count=400
    )
    result = SwarmSimulator(
        config, seed=SEED, engine="fast", scenario=SCENARIO
    ).run()
    rounds = [
        peer.completed_round
        for peer in result.peers.values()
        if not peer.is_seed and peer.completed_round is not None
    ]
    return {
        "faults": faults or "none",
        "resilience": resilience or "off",
        "completed": result.completed,
        "mean_completion_round": (
            round(float(np.mean(rounds)), 4) if rounds else None
        ),
        "stratification_index": round(stratification_index(result), 6),
    }


def run_degradation() -> Dict[str, object]:
    """The graceful-degradation curves, plus the outage-midrun gate."""
    curves: Dict[str, List[Dict[str, object]]] = {}
    for level in DEGRADATION_LEVELS:
        resilience = level if level != "off" else None
        points = []
        for duration in DEGRADATION_DURATIONS:
            faults = (
                None
                if duration == 0
                else f"outage:{DEGRADATION_OUTAGE_START}+{duration}"
            )
            point = _degradation_point(faults, resilience)
            point["outage_rounds"] = duration
            points.append(point)
        curves[level] = points
        print(
            f"degradation[{level:>8}]: mean completion round "
            + " -> ".join(
                f"{p['mean_completion_round']}" for p in points
            )
            + f"  (outage {min(DEGRADATION_DURATIONS)}"
            f"..{max(DEGRADATION_DURATIONS)} rounds)"
        )
    baseline = _degradation_point(None, None)
    midrun_full = _degradation_point(DEGRADATION_FAULTS, "full")
    ratio = (
        midrun_full["mean_completion_round"]
        / baseline["mean_completion_round"]
    )
    section = {
        "workload": {
            "leechers": DEGRADATION_LEECHERS,
            "rounds": 45,
            "piece_count": 400,
            "outage_start": DEGRADATION_OUTAGE_START,
            "outage_durations": list(DEGRADATION_DURATIONS),
            "scenario": SCENARIO,
            "seed": SEED,
        },
        "curves": curves,
        "outage_midrun_gate": {
            "fault_free": baseline,
            "full": midrun_full,
            "full_vs_fault_free_completion_ratio": round(ratio, 4),
            "tolerance": DEGRADATION_TOLERANCE,
            "within_tolerance": bool(
                abs(ratio - 1.0) <= DEGRADATION_TOLERANCE
            ),
        },
    }
    print(
        f"degradation gate: fault-free mean completion round "
        f"{baseline['mean_completion_round']}, full policy under "
        f"outage-midrun {midrun_full['mean_completion_round']} "
        f"(ratio {ratio:.3f}, tolerance +/-{DEGRADATION_TOLERANCE:.0%})"
    )
    return section


def build_payload(
    rows: List[Dict[str, object]],
    degradation: Dict[str, object],
    mode: str,
) -> Dict[str, object]:
    """Assemble the JSON payload; the CLI and pytest paths share this shape."""
    return {
        "benchmark": "resilience",
        "workload": {
            "seeds": "max(3, leechers // 2000)",
            "piece_count": 500,
            "rounds": 10,
            "start_completion": 0.3,
            "piece_selection": "rarest-first",
            "announce_size": 20,
            "bandwidths": "saroiu-like mixture",
            "faults": FAULTS,
            "resilience": POLICY,
            "scenario": SCENARIO,
            "seed": SEED,
        },
        "mode": mode,
        "results": rows,
        "degradation": degradation,
        "speedup_at_5k": next(
            row["speedup"] for row in rows if row["leechers"] == GATE_SIZE
        ),
        "required_speedup_at_5k": REQUIRED_SPEEDUP_AT_5K,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-style run: 1k + 5k only (the 5x gate still applies)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    showcase = None if args.quick else SHOWCASE_SIZE
    rows = run_scaling(TIMED_SIZES, showcase)
    degradation = run_degradation()

    payload = build_payload(rows, degradation, mode="quick" if args.quick else "full")
    speedup_at_5k = payload["speedup_at_5k"]
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("resilience", payload, args.output)
    print(f"wrote {path}")

    failed = False
    if speedup_at_5k < REQUIRED_SPEEDUP_AT_5K:
        print(
            f"FAIL: fast engine speedup on the resilient 5k swarm is "
            f"{speedup_at_5k:.1f}x (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
        )
        failed = True
    else:
        print(
            f"PASS: fast engine is {speedup_at_5k:.1f}x faster on the "
            f"resilient 5k swarm (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
        )
    gate = degradation["outage_midrun_gate"]
    if not gate["within_tolerance"]:
        print(
            "FAIL: full policy does not degrade gracefully under "
            "outage-midrun (completion ratio "
            f"{gate['full_vs_fault_free_completion_ratio']})"
        )
        failed = True
    else:
        print(
            "PASS: full policy stays within "
            f"{DEGRADATION_TOLERANCE:.0%} of the fault-free completion time "
            "under outage-midrun"
        )
    return 1 if failed else 0


def test_resilience_quick():
    """Pytest entry point: speedup gate plus the graceful-degradation gate."""
    rows = run_scaling(TIMED_SIZES)
    degradation = run_degradation()
    from conftest import write_benchmark_json

    payload = build_payload(rows, degradation, mode="quick")
    write_benchmark_json("resilience", payload)
    assert payload["speedup_at_5k"] >= REQUIRED_SPEEDUP_AT_5K
    assert degradation["outage_midrun_gate"]["within_tolerance"]


if __name__ == "__main__":
    raise SystemExit(main())
