"""Figure 1: convergence towards the stable state from the empty configuration.

Paper setting: 1-matching on G(n, d) for (n, d) in {(100, 50), (1000, 10),
(1000, 50)}; the disorder drops quickly and the stable configuration is
reached in fewer than d base units (initiatives per peer).
"""

from __future__ import annotations

from conftest import print_series_summary

from repro.experiments import figure1_convergence

# (n, d) pairs from the paper; the benchmark runs them at full scale.
PAPER_PARAMETERS = ((100, 50), (1000, 10), (1000, 50))


def _run():
    return figure1_convergence(PAPER_PARAMETERS, seed=1, max_base_units=60)


def test_figure1_convergence(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_series_summary("Figure 1: time to reach the stable state", series)
    for (n, d), (label, data) in zip(PAPER_PARAMETERS, series.items()):
        time_to_converge = float(data["time_to_converge"][0])
        disorder = data["disorder"]
        # Disorder starts near 1 (empty configuration) and reaches 0.
        assert disorder[0] > 0.5
        assert disorder[-1] == 0.0
        # Paper claim: the stable configuration is reached in < d base units.
        assert time_to_converge <= d
