"""Figure 3: disorder with respect to the instantaneous stable state under churn.

Paper setting: 1000 peers, 1-matching, 10 neighbors per peer, churn rates
{0, 0.5, 3, 10, 30} per 1000 initiatives.  The system no longer reaches the
instantaneous stable configuration under churn, but the residual disorder is
kept under control and grows with the churn rate.
"""

from __future__ import annotations

from conftest import print_series_summary

from repro.experiments import figure3_churn

CHURN_RATES = (0.0, 0.0005, 0.003, 0.01, 0.03)


def _run():
    return figure3_churn(
        CHURN_RATES, n=1000, expected_degree=10.0, seed=5, max_base_units=20.0
    )


def test_figure3_churn(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_series_summary("Figure 3: residual disorder under churn", series)
    tails = [float(data["tail_disorder"][0]) for data in series.values()]
    # No churn -> the system settles on the stable configuration.
    assert tails[0] < 0.01
    # Residual disorder stays under control even at the highest churn rate.
    assert tails[-1] < 0.35
    # Disorder grows (weakly) with the churn rate across the sweep.
    assert tails[-1] > tails[0]
    assert tails[-1] >= tails[1]
