"""Fault-layer scaling: reference vs fast swarm engine under failures.

``bench_behaviors.py`` times the engines under adversarial peers; this
benchmark times them under the fault layer (:mod:`repro.bittorrent.faults`):
a kitchen-sink schedule with background transfer loss, a tracker outage,
a mass peer crash with rejoin and a network partition, on top of poisson
churn so the outage actually queues announces.  Faults touch the paths
the fast engine vectorizes batch-wise -- the per-round loss draw over the
canonical transfer list, the crash victim draw, the partition-group
assignment, the deferred announce/retry queue -- so the claim gated here
is that the array design keeps its >= 5x advantage at 5,000 leechers
*while the substrate fails*, not just on the reliable swarm the paper
assumes.

Both engines run through the public ``engine=`` switch with the same seed
and schedule, and are bit-identical (checksummed below, churn counters
included), so the timed work is the same faulty swarm round for round.

Run headlessly (writes ``BENCH_faults.json`` in the repo root):

    python benchmarks/bench_faults.py --quick     # 1k + 5k
    python benchmarks/bench_faults.py             # 1k + 5k + 20k faulty (fast only)

or through pytest: ``pytest benchmarks/bench_faults.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.bittorrent.swarm import SwarmConfig, SwarmSimulator

SEED = 2007  # ICDCS'07
TIMED_SIZES = (1_000, 5_000)  # both engines; full mode adds the showcase
SHOWCASE_SIZE = 20_000  # faulty swarm, fast engine only (full mode)
REQUIRED_SPEEDUP_AT_5K = 5.0
GATE_SIZE = 5_000

# Every fault type at once: 5% background loss all run, a tracker outage,
# a 50-peer crash that rejoins, and a two-way partition, so the loss
# filter, the deferred-announce queue, the crash scrub/rejoin and the
# partition mask are all on the timed path.
FAULTS = "loss:0.05,outage:3+2,crash:50@4~3,partition:6+3/2"
SCENARIO = "poisson"  # churn makes the outage queue real announces


def _swarm_config(leechers: int) -> SwarmConfig:
    """The timed faulty swarm.

    Same shape as the behavior benchmark except ``piece_count``: 500
    pieces keep the population mid-download for all 10 rounds, so the
    leave-on-completion churn cannot drain the swarm early and shrink
    the timed work.
    """
    return SwarmConfig(
        leechers=leechers,
        seeds=max(3, leechers // 2_000),
        piece_count=500,
        rounds=10,
        start_completion=0.3,
        seed_upload_kbps=5_000.0,
        announce_size=20,
        faults=FAULTS,
    )


def _checksum(result) -> Dict[str, float]:
    """A few exact aggregates; engines diverging here invalidates the timing."""
    return {
        "completed": result.completed,
        "rounds_run": result.rounds_run,
        "arrivals": result.arrivals,
        "departures": result.departures,
        "total_downloaded_kbit": sum(
            p.downloaded_kbit for p in result.peers.values()
        ),
        "total_uploaded_kbit": sum(
            p.uploaded_kbit for p in result.peers.values()
        ),
        "collaboration_pairs": len(result.collaboration_volume),
        "tft_pairs": len(result.tft_reciprocal_rounds),
    }


def _time_engine(leechers: int, engine: str) -> Dict[str, object]:
    config = _swarm_config(leechers)
    start = time.perf_counter()
    result = SwarmSimulator(
        config, seed=SEED, engine=engine, scenario=SCENARIO
    ).run()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "checksum": _checksum(result)}


def run_scaling(sizes, showcase: Optional[int] = None) -> List[Dict[str, object]]:
    """Time both engines on the identical faulty workload at each size."""
    rows: List[Dict[str, object]] = []
    for leechers in sizes:
        fast = _time_engine(leechers, "fast")
        reference = _time_engine(leechers, "reference")
        if reference["checksum"] != fast["checksum"]:
            raise AssertionError(
                f"engines diverged at leechers={leechers}: "
                f"reference={reference['checksum']}, fast={fast['checksum']}"
            )
        speedup = reference["seconds"] / fast["seconds"]
        rows.append(
            {
                "leechers": leechers,
                "faults": FAULTS,
                "scenario": SCENARIO,
                "reference_seconds": round(reference["seconds"], 4),
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": round(speedup, 2),
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={leechers:>7,} (faulty): reference={reference['seconds']:7.2f}s  "
            f"fast={fast['seconds']:6.2f}s  speedup={speedup:5.1f}x  "
            f"departures={fast['checksum']['departures']}"
        )
    if showcase:
        fast = _time_engine(showcase, "fast")
        rows.append(
            {
                "leechers": showcase,
                "faults": FAULTS,
                "scenario": SCENARIO,
                "reference_seconds": None,
                "fast_seconds": round(fast["seconds"], 4),
                "speedup": None,
                "checksum": fast["checksum"],
            }
        )
        print(
            f"leechers={showcase:>7,} (faulty): reference=   (skipped)  "
            f"fast={fast['seconds']:6.2f}s  (fast engine only)"
        )
    return rows


def build_payload(rows: List[Dict[str, object]], mode: str) -> Dict[str, object]:
    """Assemble the JSON payload; the CLI and pytest paths share this shape."""
    return {
        "benchmark": "faults",
        "workload": {
            "seeds": "max(3, leechers // 2000)",
            "piece_count": 500,
            "rounds": 10,
            "start_completion": 0.3,
            "piece_selection": "rarest-first",
            "announce_size": 20,
            "bandwidths": "saroiu-like mixture",
            "faults": FAULTS,
            "scenario": SCENARIO,
            "seed": SEED,
        },
        "mode": mode,
        "results": rows,
        "speedup_at_5k": next(
            row["speedup"] for row in rows if row["leechers"] == GATE_SIZE
        ),
        "required_speedup_at_5k": REQUIRED_SPEEDUP_AT_5K,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-style run: 1k + 5k only (the 5x gate still applies)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    showcase = None if args.quick else SHOWCASE_SIZE
    rows = run_scaling(TIMED_SIZES, showcase)

    payload = build_payload(rows, mode="quick" if args.quick else "full")
    speedup_at_5k = payload["speedup_at_5k"]
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("faults", payload, args.output)
    print(f"wrote {path}")

    if speedup_at_5k < REQUIRED_SPEEDUP_AT_5K:
        print(
            f"FAIL: fast engine speedup on the faulty 5k swarm is "
            f"{speedup_at_5k:.1f}x (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
        )
        return 1
    print(
        f"PASS: fast engine is {speedup_at_5k:.1f}x faster on the faulty "
        f"5k swarm (required: >= {REQUIRED_SPEEDUP_AT_5K:.0f}x)"
    )
    return 0


def test_faults_quick():
    """Pytest entry point: the faulty quick sizes must clear the 5x gate."""
    rows = run_scaling(TIMED_SIZES)
    from conftest import write_benchmark_json

    payload = build_payload(rows, mode="quick")
    write_benchmark_json("faults", payload)
    assert payload["speedup_at_5k"] >= REQUIRED_SPEEDUP_AT_5K


if __name__ == "__main__":
    raise SystemExit(main())
