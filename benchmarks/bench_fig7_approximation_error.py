"""Figure 7: the independence approximation error on the 3-peer system.

The exact enumeration gives D(2,3) = p(1-p)^2 while Algorithm 2 gives
p(1-p)(1-p(1-p)); the gap is exactly p^3(1-p), negligible for the small
edge probabilities used in practice.
"""

from __future__ import annotations

import pytest

from repro.analytical.exact_small import exact_match_probabilities
from repro.experiments import figure7_approximation_error

PROBABILITIES = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9)


def _run():
    return figure7_approximation_error(PROBABILITIES)


def test_figure7_approximation_error(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + table.to_text())
    for row in table.to_records():
        p = row["p"]
        if row["pair"] == "2-3":
            # The error is exactly p^3 (1 - p).
            assert row["error"] == pytest.approx(p**3 * (1 - p), abs=1e-12)
        else:
            # Pairs involving the best peer carry no approximation error.
            assert row["error"] == pytest.approx(0.0, abs=1e-12)
    # Cross-check the closed forms against brute-force graph enumeration.
    matrix = exact_match_probabilities(3, 0.3)
    reference = {r["pair"]: r["exact"] for r in table.to_records() if r["p"] == 0.3}
    assert matrix[0, 1] == pytest.approx(reference["1-2"])
    assert matrix[1, 2] == pytest.approx(reference["2-3"])
