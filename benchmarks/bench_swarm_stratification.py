"""Section 6 end-to-end: a Tit-for-Tat swarm stratifies by bandwidth.

The paper argues (and references Bharambe et al. / Legout et al. for
measurements) that TFT exchanges cluster peers of similar upload capacity.
This benchmark runs the full swarm simulator -- tracker discovery, TFT +
optimistic choking, rarest-first piece selection -- and checks that
reciprocated TFT pairs correlate strongly in bandwidth rank while download
rates track upload capacity.
"""

from __future__ import annotations

from repro.experiments import swarm_stratification_experiment


def _run():
    return swarm_stratification_experiment(
        leechers=50, rounds=100, piece_count=800, seed=21
    )


def test_swarm_stratification(benchmark):
    metrics = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nSwarm stratification experiment:")
    for key, value in metrics.items():
        print(f"  {key}: {value:.3f}")

    # Reciprocated TFT partners have strongly correlated bandwidth ranks.
    assert metrics["stratification_index"] > 0.3
    # Download rates follow upload capacity (the TFT incentive works).
    assert metrics["upload_download_correlation"] > 0.4
    # Everyone eventually completes the download.
    assert metrics["completed"] == 50
