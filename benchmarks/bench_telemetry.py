"""Telemetry smoke gate: the measurement layer's cross-engine contract.

The unit suite proves the observer's pieces in isolation; this gate runs
the actual ``telemetry`` experiment end to end on both engines and
asserts the two properties CI must never lose:

* the full nested report (ground truth, observed campaign, threshold
  sensitivity, scrape series) is **bit-identical** across the reference
  and fast engines, and
* the report satisfies its own schema -- every section and metric the
  CLI prints and downstream tooling parses is present with the right
  shape, and the certified bound chain
  ``confirmed(1.0) <= reported <= true completions`` holds.

The full mode additionally runs the default-size campaign (40 leechers,
80 rounds under Poisson churn) and checks that the finite poll budget
produces the confirmed-download undercount the experiment exists to
demonstrate.

Run headlessly (writes ``BENCH_telemetry.json`` in the repo root):

    python benchmarks/bench_telemetry.py --quick    # CI smoke: small swarm
    python benchmarks/bench_telemetry.py            # + default-size campaign

or through pytest: ``pytest benchmarks/bench_telemetry.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # headless invocation: make src/ importable
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

import numpy as np

SEED = 2007  # ICDCS'07

# Every section -> metric the report must contain; the schema the CLI
# prints and the paper_map row points at.
REPORT_SCHEMA = {
    "ground_truth": (
        "completions",
        "stratification_index",
        "arrivals",
        "departures",
        "rounds_run",
        "download_cdf_rounds",
        "download_cdf",
    ),
    "observed": (
        "reported_downloads",
        "confirmed_downloads",
        "confirmed_at_certainty",
        "undercount",
        "observed_stratification_index",
        "peers_observed",
        "scrapes_taken",
        "polls_taken",
        "download_cdf_rounds",
        "download_cdf",
        "visit_count_values",
        "visit_count_peers",
    ),
    "threshold_sensitivity": (
        "thresholds",
        "confirmed_downloads",
        "undercount_vs_truth",
    ),
    "scrape_series": ("rounds", "seeders", "leechers", "snatches"),
}

QUICK_CAMPAIGN = dict(
    leechers=15, rounds=20, piece_count=60, seed=SEED, scenario="poisson",
    scrape_interval=2, poll_interval=2, poll_budget=8,
)
FULL_CAMPAIGN = dict(
    leechers=40, rounds=80, piece_count=600, seed=SEED, scenario="poisson",
    scrape_interval=2, poll_interval=2, poll_budget=25,
)


def check_schema(report: Dict) -> List[str]:
    """Validate the nested report shape; returns a list of violations."""
    problems: List[str] = []
    for section, keys in REPORT_SCHEMA.items():
        if section not in report:
            problems.append(f"missing section '{section}'")
            continue
        for key in keys:
            if key not in report[section]:
                problems.append(f"missing metric '{section}/{key}'")
                continue
            value = np.asarray(report[section][key])
            if value.dtype.kind != "f":
                problems.append(f"'{section}/{key}' is not a float array")
    if problems:
        return problems
    confirmed = float(report["observed"]["confirmed_at_certainty"][0])
    reported = float(report["observed"]["reported_downloads"][0])
    truth = float(report["ground_truth"]["completions"][0])
    if not confirmed <= reported <= truth:
        problems.append(
            f"bound chain violated: confirmed(1.0)={confirmed} "
            f"reported={reported} truth={truth}"
        )
    if report["scrape_series"]["rounds"].size == 0:
        problems.append("scrape series is empty")
    return problems


def run_campaign(label: str, campaign: Dict) -> Dict[str, object]:
    """Run one observed swarm on both engines; assert the reports match."""
    from repro.experiments import telemetry_experiment

    reports = {}
    timings = {}
    for engine in ("reference", "fast"):
        start = time.perf_counter()
        reports[engine] = telemetry_experiment(**campaign, engine=engine)
        timings[engine] = time.perf_counter() - start
    mismatches = [
        f"{section}/{key}"
        for section in reports["reference"]
        for key in reports["reference"][section]
        if not np.array_equal(
            reports["reference"][section][key], reports["fast"][section][key]
        )
    ]
    problems = check_schema(reports["reference"]) + [
        f"engines disagree on {name}" for name in mismatches
    ]
    report = reports["reference"]
    row = {
        "campaign": label,
        "config": dict(campaign),
        "reference_seconds": round(timings["reference"], 4),
        "fast_seconds": round(timings["fast"], 4),
        "true_completions": float(report["ground_truth"]["completions"][0]),
        "reported_downloads": float(report["observed"]["reported_downloads"][0]),
        "confirmed_downloads": float(report["observed"]["confirmed_downloads"][0]),
        "confirmed_at_certainty": float(
            report["observed"]["confirmed_at_certainty"][0]
        ),
        "stratification_index": float(
            report["ground_truth"]["stratification_index"][0]
        ),
        "observed_stratification_index": float(
            report["observed"]["observed_stratification_index"][0]
        ),
        "problems": problems,
    }
    print(
        f"{label:>6}: truth={row['true_completions']:.0f}  "
        f"reported={row['reported_downloads']:.0f}  "
        f"confirmed={row['confirmed_downloads']:.0f}  "
        f"index(true)={row['stratification_index']:.3f}  "
        f"index(observed)={row['observed_stratification_index']:.3f}  "
        f"[{'OK' if not problems else '; '.join(problems)}]"
    )
    return row


def run_gate(quick: bool) -> Dict[str, object]:
    rows = [run_campaign("quick", QUICK_CAMPAIGN)]
    if not quick:
        rows.append(run_campaign("full", FULL_CAMPAIGN))
        full = rows[-1]
        # The headline effect: sparse polls under churn miss completions.
        if not full["confirmed_downloads"] < full["true_completions"]:
            full["problems"].append(
                "full campaign shows no confirmed-download undercount"
            )
    return {
        "benchmark": "telemetry",
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "schema": {k: list(v) for k, v in REPORT_SCHEMA.items()},
        "results": rows,
        "problems": [p for row in rows for p in row["problems"]],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-style run: the small campaign only",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON result (default: repo root)",
    )
    args = parser.parse_args(argv)

    payload = run_gate(args.quick)
    # Import here so the module also works when pytest imports it from the
    # benchmarks directory (conftest is on the path in both invocations).
    from conftest import write_benchmark_json

    path = write_benchmark_json("telemetry", payload, args.output)
    print(f"wrote {path}")

    if payload["problems"]:
        print(f"FAIL: {len(payload['problems'])} telemetry contract violations")
        return 1
    print(
        "PASS: telemetry reports are bit-identical across engines and "
        "satisfy the report schema"
    )
    return 0


def test_telemetry_quick():
    """Pytest entry point: the quick campaign must satisfy the contract."""
    payload = run_gate(quick=True)
    from conftest import write_benchmark_json

    write_benchmark_json("telemetry", payload)
    assert payload["problems"] == []


if __name__ == "__main__":
    raise SystemExit(main())
