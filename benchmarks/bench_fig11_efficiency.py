"""Figure 11: expected download/upload ratio as a function of the offered upload.

Paper setting: b0 = 3 Tit-for-Tat slots (default 4 minus the optimistic one),
d = 20 acceptable peers on average, bandwidths from the Saroiu distribution.
Qualitative shape to reproduce: best peers sit below ratio 1, peers inside a
bandwidth density peak sit near 1, efficiency peaks appear just above the
density peaks, and the lowest peers still achieve a decent ratio.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure11_efficiency

N = 1000
B0 = 3
EXPECTED_DEGREE = 20.0


def _run():
    return figure11_efficiency(n=N, b0=B0, expected_degree=EXPECTED_DEGREE, seed=17)


def test_figure11_efficiency(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    observations = result["observations"]
    print("\nFigure 11: expected D/U ratio vs upload bandwidth per slot")
    efficiency = np.asarray(result["efficiency"])
    upload = np.asarray(result["upload_per_slot"])
    deciles = np.linspace(0, len(upload) - 1, 11).astype(int)
    for index in deciles:
        print(f"  upload/slot={upload[index]:9.1f} kbps  ratio={efficiency[index]:.3f}")
    print("  observations: " + ", ".join(f"{k}={v:.3f}" for k, v in observations.items()))

    # Best peers suffer from low share ratios (< 1).
    assert observations["best_peer_efficiency"] < 1.0
    # Typical peers (density peaks) are close to ratio 1.
    assert 0.7 <= observations["median_efficiency"] <= 1.6
    # Efficiency peaks above 1 appear (peers just above a density peak).
    assert observations["max_efficiency"] > 1.5
    # The ratio spans roughly the 0.4 .. 2.4 band the paper plots.
    assert efficiency.min() > 0.1
    assert efficiency.max() < 10.0
